"""Network-, serving- and precision-level inference benchmarks.

The drivers here are thin spec-builders: each one declares its sweep
as a :class:`~repro.tune.spec.SweepSpec` (nets x backends x precisions
x geometries) and executes it through the generic
:class:`~repro.tune.harness.SweepHarness`, which owns the presets,
runner caching, the warm-then-measure timing protocol, energy records
and artifact writing.  What stays in each driver is its
claim-specific logic:

* :func:`run_network_benchmark` — single-process batched inference on
  both convolution engines (``results/BENCH_networks.json``):
  bit-identity cross-checks, per-network cycles,
  images-per-million-cycles, cache hit rates, tempus-vs-binary and
  scheduling ratios.
* :func:`run_serving_benchmark` — the sharded multi-worker serving
  runtime (``results/BENCH_serving.json``): requests/sec and
  images-per-Mcycle vs worker count, with every worker count verified
  bit-identical to the single-process reference.
* :func:`run_precision_benchmark` — the precision sweep
  (``results/BENCH_precision.json``): every model on both engines at
  INT8 / INT4 / INT2 / mixed profiles, reproducing the paper-family
  claim that the tempus:binary cycle ratio improves monotonically as
  precision drops (binary cycle cost is precision-independent; tub
  bursts shorten with the weights), plus a sharded-serving
  bit-identity verification at a low-precision point.
* :func:`run_backend_benchmark` — the compute-backend sweep
  (``results/BENCH_backends.json``) across every registered MAC-unit
  design.
* :func:`run_llm_benchmark` — token-by-token autoregressive decode of
  the extension transformer block (``results/BENCH_llm.json``):
  growing-sequence GEMM shapes through the dynamic-token linear
  stages, per-token latency percentiles, and batched/fused/per-image/
  sharded bit-identity at every backend x precision point.

Shared by ``python -m repro serve-bench [--workers N] [--precision P]``
and the ``benchmarks/bench_network_inference.py`` /
``bench_serving.py`` / ``bench_precision_sweep.py`` scripts.  The
design-space autotuner (``python -m repro tune``) drives the same
harness from :mod:`repro.tune.autotune`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.latency import (
    burst_map_cache_stats,
    burst_map_disk_cache_dir,
    cached_burst_cycle_map,
    configure_burst_map_disk_cache,
)
from repro.errors import DataflowError
from repro.eval.throughput import requests_per_second
from repro.nvdla.config import CoreConfig
from repro.profiling.energy import workload_energy
from repro.quant.profile import precision_profile
from repro.runtime.backends import get_backend
from repro.tune.harness import (
    FULL_PRESET,
    QUICK_PRESET,
    SweepHarness,
    engine_record,
    energy_record,
    measure,
    write_benchmark_artifact,
)
from repro.tune.spec import (
    DEFAULT_BACKEND_PRECISIONS,
    DEFAULT_BACKEND_SWEEP,
    DEFAULT_MODELS,
    DEFAULT_PRECISION_SWEEP,
    DEFAULT_SERVING_MODELS,
    DEFAULT_WORKER_COUNTS,
    SweepSpec,
    check_models,
)
from repro.utils.tables import Column, render_columns, yes_no

#: Backwards-compatible aliases: the record builders and model check
#: predate the :mod:`repro.tune` harness and were imported under these
#: names.
_engine_record = engine_record
_energy_record = energy_record
_check_models = check_models


def run_network_benchmark(
    models: "tuple[str, ...] | list[str]" = DEFAULT_MODELS,
    batch: int = 4,
    quick: bool = False,
    scheduling: bool = True,
    config: CoreConfig | None = None,
    precision="int8",
    host_speed: bool = False,
    out_dir: "str | Path | None" = "results",
) -> dict:
    """Benchmark batched network inference on both engines.

    Args:
        models: zoo model names (>= 1; the artifact is meant to carry
            at least two for cross-model comparison).
        batch: images per network run (>= 1).
        quick: smaller width/resolution preset for smoke runs.
        scheduling: apply burst-aware tile scheduling.
        config: array geometry (defaults to 16x16 INT8).
        precision: per-layer precision profile (name, IntSpec or
            :class:`~repro.quant.profile.PrecisionProfile`).
        host_speed: additionally record the raw-speed tier's
            before/after host-throughput pair (unfused/pickled
            baseline vs fused executor + shared-memory transport +
            warm persistent burst-map cache at one worker) plus the
            fused-vs-unfused bit-identity matrix over all registered
            backends x uniform precisions.  Off by default — the
            section carries wall-clock numbers, so deterministic
            payload consumers opt in.
        out_dir: where BENCH_networks.json is written (None = don't).

    Returns:
        the record written to the artifact.
    """
    profile = precision_profile(precision)
    spec = SweepSpec(
        name="networks",
        nets=tuple(models),
        backends=("binary", "tempus"),
        precisions=(profile,),
        batch=batch,
        quick=quick,
        scheduling=scheduling,
    )
    harness = SweepHarness(spec, config)
    runners = {
        engine: harness.runner(engine, profile)
        for engine in ("binary", "tempus")
    }
    unscheduled = harness.runner("tempus", profile, scheduling=False)

    model_records = []
    for name in spec.nets:
        # Warm both runners (compile + burst maps) before timing, so
        # wall_seconds measures steady state — the same protocol the
        # serving benchmark uses, keeping the numbers comparable.
        runners["binary"].run(name, 1)
        runners["tempus"].run(name, 1)
        binary, binary_seconds = measure(
            lambda: runners["binary"].run(name, batch)
        )
        tempus, tempus_seconds = measure(
            lambda: runners["tempus"].run(name, batch)
        )
        if not np.array_equal(binary.output, tempus.output):
            raise DataflowError(
                f"{name}: engines diverged — dataflow compliance "
                "violated"
            )
        # With scheduling off the tempus run IS the baseline — don't
        # pay a third forward pass for a ratio that is 1.0 by
        # construction.
        baseline = unscheduled.run(name, batch) if scheduling else tempus
        binary_energy = energy_record(runners["binary"], name, binary)
        tempus_energy = energy_record(runners["tempus"], name, tempus)
        record = {
            "model": name,
            "batch": int(batch),
            "stages": len(tempus.stages),
            "macs_per_image": int(
                tempus.macs // max(tempus.batch_size, 1)
            ),
            "outputs_bit_identical": True,
            "engines": {
                "binary": engine_record(
                    binary, binary_seconds, binary_energy
                ),
                "tempus": engine_record(
                    tempus, tempus_seconds, tempus_energy
                ),
            },
            "tempus_vs_binary_energy": float(
                tempus_energy["pj_per_image"]
                / max(binary_energy["pj_per_image"], 1e-12)
            ),
            # Cycle-for-cycle, the tub core trades latency for
            # area/power (the paper's Table 2 story); > means binary
            # finishes the batch in fewer cycles.
            "binary_vs_tempus_cycles": float(
                tempus.conv_cycles / max(binary.conv_cycles, 1)
            ),
            "tempus_vs_binary_throughput": float(
                binary.conv_cycles / max(tempus.conv_cycles, 1)
            ),
            "scheduling_speedup": float(
                baseline.conv_cycles / max(tempus.conv_cycles, 1)
            ),
        }
        model_records.append(record)

    cache = burst_map_cache_stats()
    config = runners["tempus"].config  # profile may widen the precision
    payload = {
        "benchmark": "network_inference",
        "config": {
            "k": config.k,
            "n": config.n,
            "precision": config.precision.name,
        },
        "precision_profile": profile.name,
        "precision_layers": profile.describe(),
        **harness.common_head(),
        "models": model_records,
        "burst_map_cache_totals": {
            "hits": cache["hits"],
            "misses": cache["misses"],
            "entries": cache["entries"],
        },
    }
    if host_speed:
        model = (
            "mobilenet_v2"
            if "mobilenet_v2" in spec.nets
            else spec.nets[0]
        )
        payload["host_speed"] = host_speed_record(
            model,
            config=config,
            precision=profile,
            scale=harness.scale,
            input_size=harness.input_size,
            scheduling=scheduling,
        )
    return write_benchmark_artifact(
        payload, "BENCH_networks.json", out_dir
    )


#: The before/after host-speed comparison and the fused identity
#: matrix sweep these axes (all registered MAC-unit designs at the
#: paper's three uniform precisions).
HOST_SPEED_BACKENDS = ("binary", "tempus", "tugemm", "tubgemm")
HOST_SPEED_PRECISIONS = ("int8", "int4", "int2")


def host_speed_record(
    model: str,
    config: CoreConfig | None = None,
    precision="int8",
    scale: float = 1.0,
    input_size: "int | None" = None,
    scheduling: bool = True,
    requests: int = 32,
    repeats: int = 3,
) -> dict:
    """Measure the raw-speed tier's before/after pair on one model.

    ``before`` is the naive serving configuration: unfused executor,
    pickled queue transport, no persistent cache.  ``after`` enables
    all three raw-speed features — the fused executor hot path, the
    shared-memory shard transport and a warm persistent burst-map
    cache — at the same worker count (1, so the comparison isolates
    per-request host cost rather than pool parallelism).  Both runs
    are verified bit-identical (outputs and cycles) against each
    other, and the record carries the fused-vs-unfused identity matrix
    over every registered backend x uniform precision.
    """
    import tempfile

    from repro.runtime.runner import NetworkRunner
    from repro.serve import ShardedRunner
    from repro.serve.shm import default_transport

    variants = {
        "before": dict(transport="pickle", fused=False),
        "after": dict(transport=default_transport(), fused=True),
    }
    measured = {}
    outputs = {}
    with tempfile.TemporaryDirectory(
        prefix="repro-burst-cache-"
    ) as cache_dir:
        for label, knobs in variants.items():
            with ShardedRunner(
                workers=1,
                config=config,
                engine="tempus",
                scheduling=scheduling,
                scale=scale,
                input_size=input_size,
                precision=precision,
                cache_dir=(
                    cache_dir if label == "after" else None
                ),
                **knobs,
            ) as server:
                server.start(model)
                # Warm pool, burst maps and (after) the disk tier, so
                # the timed runs compare steady-state host cost.
                server.run(model, requests)
                result, seconds = measure(
                    lambda: server.run(model, requests), repeats
                )
            outputs[label] = result
            record = engine_record(result, seconds)
            record.update(knobs)
            record["persistent_cache"] = label == "after"
            measured[label] = record
    if not (
        np.array_equal(
            outputs["before"].output, outputs["after"].output
        )
        and outputs["before"].conv_cycles
        == outputs["after"].conv_cycles
    ):
        raise DataflowError(
            f"{model}: the fused/shm serving path diverged from the "
            "unfused baseline"
        )
    # The acceptance matrix, verified in-driver: the fused executor is
    # bit-identical (outputs AND per-stage cycles) to the reference
    # path on every backend at every uniform precision.
    from repro.runtime.executor import BatchExecutor

    identity = {}
    for backend in HOST_SPEED_BACKENDS:
        identity[backend] = {}
        for name in HOST_SPEED_PRECISIONS:
            runner = NetworkRunner(
                config,
                engine=backend,
                scheduling=scheduling,
                scale=scale,
                input_size=input_size,
                precision=name,
            )
            net = runner.compile(model)
            images = runner.synthesize_batch(model, 2)
            plain = BatchExecutor(net).run_job(images)
            fused = BatchExecutor(net, fused=True).run_job(images)
            identical = bool(
                np.array_equal(plain["output"], fused["output"])
                and plain["conv_cycles"] == fused["conv_cycles"]
                and plain["stage_cycles"] == fused["stage_cycles"]
            )
            if not identical:
                raise DataflowError(
                    f"{model}: fused executor diverged on "
                    f"{backend}/{name}"
                )
            identity[backend][name] = identical
    speedup = (
        measured["after"]["host_images_per_second"]
        / max(measured["before"]["host_images_per_second"], 1e-12)
    )
    return {
        "model": model,
        "workers": 1,
        "requests": int(requests),
        "repeats": int(repeats),
        "before": measured["before"],
        "after": measured["after"],
        "host_speedup": float(speedup),
        "bit_identical": True,
        "fused_identity": identity,
    }


#: Nominal shard clock for converting simulated cycle makespans into
#: requests/sec — 1 GHz, the edge-DLA class frequency the paper's P&R
#: closes timing at.
SERVING_CLOCK_HZ = 1_000_000_000


def run_serving_benchmark(
    models: "tuple[str, ...] | list[str]" = DEFAULT_SERVING_MODELS,
    worker_counts: "tuple[int, ...] | list[int]" = DEFAULT_WORKER_COUNTS,
    requests: int = 32,
    quick: bool = False,
    scheduling: bool = True,
    config: CoreConfig | None = None,
    engine: str = "tempus",
    max_batch: int = 8,
    max_wait: float = 0.002,
    repeats: int = 3,
    precision="int8",
    fault_rate: float = 0.0,
    fault_seed: int = 110,
    job_deadline: "float | None" = None,
    transport: "str | None" = None,
    fused: bool = False,
    cache_dir: "str | Path | None" = None,
    out_dir: "str | Path | None" = "results",
) -> dict:
    """Benchmark the sharded serving runtime across worker counts.

    For every model the single-process :class:`NetworkRunner` run over
    the same request stream is the reference; every worker count is
    verified bit-identical (outputs and cycles) before its throughput
    is recorded.

    The primary throughput metric is **simulated**, like every other
    cycle-derived number in this repo: the shards model replicated
    compute units running in parallel, so the request stream completes
    after ``max(per-shard cycles)`` — the makespan — and
    ``requests_per_second = requests * clock_hz / makespan``.  This is
    deterministic and host-independent (a single-core CI box can't
    demonstrate process-level parallelism on the wall clock; the
    simulated clock can).  Host wall time is still recorded per point
    (``wall_seconds`` / ``host_images_per_second``), measured in steady
    state: the shard pool is started and warmed before timing, so
    fork/compile costs don't pollute it.

    Args:
        models: zoo model names (the artifact contract wants >= 3).
        worker_counts: shard-pool sizes to sweep (e.g. (1, 2, 4)).
        requests: single-image requests per timed run.
        quick: smaller width/resolution preset for smoke runs.
        scheduling: apply burst-aware tile scheduling when lowering.
        config: array geometry (defaults to 16x16 INT8).
        engine: compute backend served — any registered name
            ("binary", "tempus", "tugemm", "tubgemm", ...) or a
            "first/interior/last" mixed spec.
        max_batch / max_wait: dynamic-batching knobs.
        repeats: best-of-N wall-clock repeats per worker count.
        precision: per-layer precision profile served.
        fault_rate: probability a (job, attempt) draws an injected
            fault (crash / slow / transient error) — the chaos knob.
            Every point is still verified bit-identical to the
            single-process reference; the supervisor's recovery
            telemetry lands on each record.
        fault_seed: seed of the deterministic fault plan.
        job_deadline: hang/slow detection deadline in seconds
            (defaults to 2.0 when faults are injected).
        transport: how batch/result tensors cross the worker boundary
            — "shm" (shared-memory segments) or "pickle"; None picks
            the platform default (shm where available).
        fused: serve every point on the executor's fused hot path
            (bit-identity to the unfused single-process reference is
            still verified per point).
        cache_dir: persistent burst-map cache directory shared by the
            parent and all workers; the per-point cache records then
            carry disk hit/miss/write deltas (the cold-vs-warm CI leg
            reads them).
        out_dir: where BENCH_serving.json is written (None = don't).

    Returns:
        the record written to the artifact.
    """
    from repro.serve import FaultPlan, ShardedRunner

    fault_plan = None
    if fault_rate > 0.0:
        # Hangs are exercised by the dedicated fault-tolerance bench;
        # the serving sweep injects the cheap-to-recover kinds so the
        # timing numbers stay dominated by serving, not by deadlines.
        # Same kind tuple (and order) as the fault-tolerance bench:
        # the rate-based kind draw indexes into this tuple, so keeping
        # it identical means one fault seed names one schedule across
        # both drivers.
        fault_plan = FaultPlan.random(
            fault_seed,
            fault_rate,
            kinds=DEFAULT_FAULT_KINDS,
            slow_seconds=0.02,
        )
        if job_deadline is None:
            job_deadline = 2.0
    if requests < 1:
        raise DataflowError("requests must be >= 1")
    profile = precision_profile(precision)
    # The spec canonicalizes the backend spelling (validating the
    # name(s) up front, keeping the JSON payload a plain string) and
    # dedup-sorts the worker sweep smallest -> largest.
    spec = SweepSpec(
        name="serving",
        nets=tuple(models),
        backends=(engine,),
        precisions=(profile,),
        workers=tuple(worker_counts),
        quick=quick,
        scheduling=scheduling,
    )
    engine = spec.backends[0]
    worker_counts = spec.workers
    harness = SweepHarness(spec, config)
    scale, input_size = harness.scale, harness.input_size

    reference_runner = harness.runner(engine, profile)
    config = reference_runner.config  # profile may widen the precision

    # Point the parent at the persistent tier *before* the reference
    # runs: the parent's cold lookups then publish (or warm from) the
    # shared entries, so a repeat invocation over the same cache_dir
    # reports disk hits even when forked workers inherit the parent's
    # warm in-memory cache and never touch disk themselves.
    previous_cache_dir = burst_map_disk_cache_dir()
    if cache_dir is not None:
        configure_burst_map_disk_cache(cache_dir)
    disk_before = burst_map_cache_stats()

    model_records = []
    for name in spec.nets:
        reference = reference_runner.run(name, requests)
        # Energy is cycle-derived, so it is identical at every worker
        # count (the shards replicate compute, they don't change it).
        energy = energy_record(reference_runner, name, reference)
        sweep = []
        for workers in worker_counts:
            with ShardedRunner(
                workers=workers,
                config=config,
                engine=engine,
                scheduling=scheduling,
                scale=scale,
                input_size=input_size,
                max_batch=max_batch,
                max_wait=max_wait,
                precision=profile,
                fault_plan=fault_plan,
                job_deadline=job_deadline,
                transport=transport,
                fused=fused,
                cache_dir=cache_dir,
            ) as server:
                transport = server.transport  # resolved default
                server.start(name)
                # Warm up pool + caches (kept: its cache record is
                # where cold workers' disk traffic shows up).
                warmup = server.run(name, requests)
                result, seconds = measure(
                    lambda: server.run(name, requests), repeats
                )
            identical = bool(
                np.array_equal(result.output, reference.output)
                and result.conv_cycles == reference.conv_cycles
            )
            if not identical:
                raise DataflowError(
                    f"{name}: sharded run with {workers} worker(s) "
                    "diverged from the single-process reference"
                )
            record = engine_record(result, seconds, energy)
            # Persistent-tier deltas for this point, warmup stream
            # included — cold workers do their disk traffic while
            # warming, the measured stream runs all-hot.
            for key in ("disk_hits", "disk_misses", "disk_writes"):
                if key in result.cache:
                    record["cache"][key] = int(
                        result.cache[key]
                    ) + int(warmup.cache.get(key, 0))
            makespan = result.makespan_cycles
            record["workers"] = int(workers)
            record["jobs"] = int(result.jobs)
            record["shard_cycles"] = [
                int(cycles) for cycles in result.shard_cycles
            ]
            record["makespan_cycles"] = int(makespan)
            record["requests_per_second"] = float(
                requests_per_second(
                    requests, makespan / SERVING_CLOCK_HZ
                )
            )
            record["bit_identical_to_reference"] = identical
            # A single worker's makespan is the whole stream's cycle
            # total, so this baseline is exact even when the sweep
            # doesn't include a 1-worker point.
            record["speedup_vs_one_worker"] = float(
                result.conv_cycles / max(makespan, 1)
            )
            record["health"] = result.health
            sweep.append(record)
        model_records.append(
            {
                "model": name,
                "requests": int(requests),
                "reference_conv_cycles": int(reference.conv_cycles),
                "workers": sweep,
                "requests_per_second_monotonic": all(
                    later["requests_per_second"]
                    >= earlier["requests_per_second"]
                    for earlier, later in zip(sweep, sweep[1:])
                ),
            }
        )

    payload = {
        "benchmark": "sharded_serving",
        "engine": engine,
        "config": {
            "k": config.k,
            "n": config.n,
            "precision": config.precision.name,
        },
        "precision_profile": profile.name,
        "precision_layers": profile.describe(),
        **harness.common_head(),
        "max_batch": int(max_batch),
        "max_wait": float(max_wait),
        "repeats": int(repeats),
        "clock_hz": SERVING_CLOCK_HZ,
        "worker_counts": [int(count) for count in worker_counts],
        "fault_rate": float(fault_rate),
        "fault_seed": int(fault_seed) if fault_rate > 0.0 else None,
        "transport": transport,
        "fused": bool(fused),
        "cache_dir": None if cache_dir is None else str(cache_dir),
        "models": model_records,
    }
    if cache_dir is not None:
        disk_after = burst_map_cache_stats()
        worker_totals = {
            key: sum(
                sweep["cache"].get(key, 0)
                for record in model_records
                for sweep in record["workers"]
            )
            for key in ("disk_hits", "disk_misses", "disk_writes")
        }
        # Parent-side deltas (the reference runs' cold lookups publish
        # to / warm from the shared tier) plus the worker deltas above:
        # a cold cache_dir shows disk_writes > 0, a warm one
        # disk_hits > 0 — the cold-vs-warm CI leg asserts exactly that.
        payload["disk_cache_totals"] = {
            key: int(disk_after[key] - disk_before[key])
            + worker_totals[key]
            for key in ("disk_hits", "disk_misses", "disk_writes")
        }
    configure_burst_map_disk_cache(previous_cache_dir)
    return write_benchmark_artifact(
        payload, "BENCH_serving.json", out_dir
    )


def render_serving_benchmark(payload: dict) -> str:
    """Human-readable summary of a serving benchmark payload."""
    rows = [
        {**sweep, "model": record["model"],
         "requests": record["requests"]}
        for record in payload["models"]
        for sweep in record["workers"]
    ]
    columns = [
        Column("model", "model"),
        Column("workers", "workers"),
        Column("requests", "requests"),
        Column("makespan cycles", "makespan_cycles", format=","),
        Column("req/s (sim)", "requests_per_second", format=",.0f"),
        Column(
            "vs 1 worker",
            "speedup_vs_one_worker",
            format=".2f",
            suffix="x",
        ),
        Column(
            "img/Mcycle", "images_per_million_cycles", format=".3f"
        ),
        Column(
            "bit-identical",
            lambda row: yes_no(row["bit_identical_to_reference"]),
        ),
    ]
    config = payload["config"]
    table = render_columns(
        rows,
        columns,
        title=(
            f"sharded serving ({payload['engine']}) on "
            f"{config['k']}x{config['n']} "
            f"{payload.get('precision_layers', config['precision'])} "
            f"(scale {payload['scale']}, input {payload['input_size']}, "
            f"max_batch {payload['max_batch']}, "
            f"transport {payload.get('transport', 'pickle')}"
            f"{', fused' if payload.get('fused') else ''})"
        ),
    )
    if payload.get("cache_dir"):
        totals = {"disk_hits": 0, "disk_misses": 0, "disk_writes": 0}
        for record in payload["models"]:
            for sweep in record["workers"]:
                for counter in totals:
                    totals[counter] += sweep["cache"].get(counter, 0)
        table += (
            f"\n\npersistent burst cache {payload['cache_dir']}: "
            + ", ".join(
                f"{counter}={count}"
                for counter, count in totals.items()
            )
        )
    if payload.get("fault_rate", 0.0) > 0.0:
        totals = {
            "restarts": 0,
            "redispatched": 0,
            "retries": 0,
            "degraded_jobs": 0,
        }
        for record in payload["models"]:
            for sweep in record["workers"]:
                for counter in totals:
                    totals[counter] += sweep["health"][counter]
        table += (
            f"\n\nfault injection: rate {payload['fault_rate']:g} "
            f"(seed {payload['fault_seed']}) — every point completed "
            "bit-identical; recovery totals: "
            + ", ".join(
                f"{counter}={count}"
                for counter, count in totals.items()
            )
        )
    return table


#: Load-benchmark defaults: two nets x two backends x the {1, 2, 4}
#: worker sweep the artifact contract wants, chaos-verified at the
#: fault-tolerance tier's headline 25% injection rate.
DEFAULT_LOAD_BACKENDS = ("tempus", "binary")
DEFAULT_LOAD_WORKERS = (1, 2, 4)
DEFAULT_LOAD_FAULT_RATE = 0.25
#: Adaptive SLO: p99 target = this factor x the unloaded closed-loop
#: p99, so the target tracks the host instead of hardcoding
#: milliseconds a slower CI box can never meet.
LOAD_SLO_FACTOR = 3.0


def run_load_benchmark(
    models: "tuple[str, ...] | list[str]" = DEFAULT_SERVING_MODELS,
    backends: "tuple[str, ...] | list[str]" = DEFAULT_LOAD_BACKENDS,
    worker_counts: "tuple[int, ...] | list[int]" = DEFAULT_LOAD_WORKERS,
    requests: int = 48,
    quick: bool = False,
    scheduling: bool = True,
    config: CoreConfig | None = None,
    max_batch: int = 8,
    max_wait: float = 0.002,
    precision="int8",
    slo_ms: "float | None" = None,
    arrival_seed: int = 110,
    fault_rate: float = DEFAULT_LOAD_FAULT_RATE,
    fault_seed: int = 110,
    transport: "str | None" = None,
    fused: bool = True,
    search_iterations: int = 5,
    profile: bool = False,
    out_dir: "str | Path | None" = "results",
) -> dict:
    """Max sustained requests/sec at a p99 SLO, per (net x backend x
    workers), through the pipelined serving gateway.

    For every point the driver:

    1. verifies the gateway **bit-identical** (outputs and cycles) to
       the single-process :class:`NetworkRunner` reference under
       Poisson and burst arrivals — and again through a *chaos pool*
       injecting ``fault_rate`` faults (crash / transient error /
       slow) under Poisson load;
    2. measures unloaded latency (closed loop, one submitter) and
       derives the p99 SLO (``slo_ms`` fixed, or adaptively
       ``LOAD_SLO_FACTOR x`` the unloaded p99 so the target tracks
       the host);
    3. binary-searches the highest open-loop Poisson rate the point
       sustains under that SLO (:func:`~repro.serve.loadgen
       .find_sustained_rate`), recording the winning run's full
       latency decomposition (queue wait / dispatch / compute /
       reassembly percentiles);
    4. records the before/after pipelining comparison: the
       synchronous one-batch-at-a-time driver
       (:func:`~repro.serve.loadgen.run_batch_synchronous` — the
       pre-gateway discipline) vs the gateway's pipelined dispatch
       on the same pool, requests/sec each.

    Args:
        models: zoo model names (artifact contract: >= 2).
        backends: compute backends to sweep (contract: >= 2).
        worker_counts: shard-pool sizes (contract: 1, 2, 4).
        requests: request-stream length for identity legs and the
            pipelining comparison.
        quick: smaller preset + narrower probes for smoke runs.
        slo_ms: fixed p99 target in milliseconds (None = adaptive).
        arrival_seed: seed of every arrival schedule (replayable).
        fault_rate / fault_seed: chaos-leg injection knobs
            (``fault_rate=0`` skips the chaos leg).
        transport / fused / max_batch / max_wait / precision: serving
            knobs, as in :func:`run_serving_benchmark`.
        search_iterations: bisection steps of the SLO search.
        profile: attach the per-batch phase breakdown of each point's
            winning run (``serve-bench --load --profile``).
        out_dir: where BENCH_load.json is written (None = don't).

    Returns:
        the payload written to the artifact.
    """
    from repro.serve import (
        FaultPlan,
        ServingGateway,
        ShardedRunner,
        arrival_schedule,
        find_sustained_rate,
        poisson_schedule,
        run_batch_synchronous,
        run_closed_loop,
        run_open_loop,
    )

    if requests < max(4, max_batch):
        raise DataflowError(
            f"requests must be >= max(4, max_batch={max_batch})"
        )
    if not 0.0 <= fault_rate <= 1.0:
        raise DataflowError("fault_rate must be in [0, 1]")
    if slo_ms is not None and slo_ms <= 0.0:
        raise DataflowError("slo_ms must be positive")
    profile_cap = precision_profile(precision)
    spec = SweepSpec(
        name="load",
        nets=tuple(models),
        backends=tuple(backends),
        precisions=(profile_cap,),
        workers=tuple(worker_counts),
        quick=quick,
        scheduling=scheduling,
    )
    harness = SweepHarness(spec, config)
    scale, input_size = harness.scale, harness.input_size
    # Probe sizing: enough requests per probe for a stable p99 without
    # letting low-rate probes run for many seconds.
    probe_window = 0.4 if quick else 0.75
    probe_min = 8 if quick else 16
    probe_max = 32 if quick else 96
    bracket_steps = 3 if quick else 5

    fault_plan = None
    if fault_rate > 0.0:
        # Same kinds/ordering as the serving + fault benches, so one
        # fault seed names one schedule across all three drivers.
        fault_plan = FaultPlan.random(
            fault_seed,
            fault_rate,
            kinds=DEFAULT_FAULT_KINDS,
            slow_seconds=0.02,
        )

    def serving_runner(backend, profile_obj, workers, chaos):
        return ShardedRunner(
            workers=workers,
            config=config,
            engine=backend,
            scheduling=scheduling,
            scale=scale,
            input_size=input_size,
            max_batch=max_batch,
            max_wait=max_wait,
            precision=profile_obj,
            fault_plan=fault_plan if chaos else None,
            job_deadline=2.0 if chaos else None,
            transport=transport,
            fused=fused,
        )

    def identical(result, reference) -> bool:
        return bool(
            np.array_equal(result.output, reference.output)
            and result.conv_cycles == reference.conv_cycles
        )

    records = []
    resolved_transport = transport
    for backend in spec.backends:
        reference_runner = harness.runner(backend, profile_cap)
        for net in spec.nets:
            reference = reference_runner.run(net, requests)
            images = reference_runner.synthesize_batch(net, requests)
            for workers in spec.workers:
                with serving_runner(
                    backend, profile_cap, workers, chaos=False
                ) as server:
                    resolved_transport = server.transport
                    server.start(net)
                    # Warm the pool (worker spawn, caches) off the
                    # measured streams.
                    run_closed_loop(
                        ServingGateway(server, net),
                        images[:max_batch],
                        concurrency=workers,
                    )

                    # 1. bit-identity under both arrival processes.
                    poisson_run = run_open_loop(
                        ServingGateway(server, net),
                        images,
                        poisson_schedule(
                            200.0 * workers, requests,
                            seed=arrival_seed,
                        ),
                    )
                    burst_run = run_open_loop(
                        ServingGateway(server, net),
                        images,
                        arrival_schedule(
                            "burst", 200.0 * workers, requests,
                            seed=arrival_seed,
                            burst_size=max_batch,
                        ),
                    )
                    identity = {
                        "poisson": identical(
                            poisson_run.result, reference
                        ),
                        "burst": identical(
                            burst_run.result, reference
                        ),
                    }

                    # 2. unloaded latency -> SLO target.
                    unloaded = run_closed_loop(
                        ServingGateway(server, net),
                        images[: max(probe_min, max_batch)],
                        concurrency=1,
                    )
                    unloaded_p99 = max(
                        unloaded.stats["p99"], 1e-6
                    )
                    slo_p99 = (
                        slo_ms / 1e3
                        if slo_ms is not None
                        else LOAD_SLO_FACTOR * unloaded_p99
                    )

                    # 4. before/after: synchronous driver vs
                    # pipelined gateway on the same warm pool.
                    sync_run = run_batch_synchronous(
                        ServingGateway(server, net, eager=False),
                        images,
                        batch=max_batch,
                    )
                    pipelined_run = run_closed_loop(
                        ServingGateway(server, net),
                        images,
                        concurrency=workers * max_batch,
                    )
                    identity["synchronous"] = identical(
                        sync_run.result, reference
                    )
                    identity["pipelined"] = identical(
                        pipelined_run.result, reference
                    )

                    # 3. SLO search over open-loop Poisson rates.
                    def probe(rate):
                        count = int(
                            min(
                                probe_max,
                                max(probe_min, rate * probe_window),
                            )
                        )
                        return run_open_loop(
                            ServingGateway(server, net),
                            reference_runner.synthesize_batch(
                                net, count
                            ),
                            poisson_schedule(
                                rate, count, seed=arrival_seed
                            ),
                        )

                    search = find_sustained_rate(
                        probe,
                        slo_p99,
                        start_rate=max(
                            pipelined_run.achieved_rate / 2.0, 1.0
                        ),
                        bracket_steps=bracket_steps,
                        iterations=search_iterations,
                    )
                    best = search["run"]
                    if best is None or search["rate"] <= 0.0:
                        raise DataflowError(
                            f"{net}/{backend}/{workers}w: no "
                            f"sustainable rate under the "
                            f"{slo_p99 * 1e3:.2f} ms p99 SLO — even "
                            "the lowest probe missed it"
                        )

                chaos_identity = None
                chaos_health = None
                if fault_plan is not None:
                    with serving_runner(
                        backend, profile_cap, workers, chaos=True
                    ) as chaos_server:
                        chaos_server.start(net)
                        chaos_run = run_open_loop(
                            ServingGateway(chaos_server, net),
                            images,
                            poisson_schedule(
                                200.0 * workers, requests,
                                seed=arrival_seed,
                            ),
                        )
                    chaos_identity = identical(
                        chaos_run.result, reference
                    )
                    identity["chaos_poisson"] = chaos_identity
                    chaos_health = {
                        counter: int(
                            chaos_run.result.health[counter]
                        )
                        for counter in (
                            "restarts",
                            "retries",
                            "redispatched",
                            "degraded_jobs",
                            "worker_errors",
                        )
                    }

                for leg, flag in identity.items():
                    if not flag:
                        raise DataflowError(
                            f"{net}/{backend}/{workers}w: gateway "
                            f"stream under {leg} arrivals diverged "
                            "from the single-process reference"
                        )

                stats = best.stats
                record = {
                    "net": net,
                    "backend": backend,
                    "precision": profile_cap.name,
                    "workers": int(workers),
                    "requests": int(requests),
                    "cycles": int(reference.conv_cycles),
                    "bit_identical": identity,
                    "sustained_rps": float(search["rate"]),
                    "achieved_rps": float(best.achieved_rate),
                    "probes": int(search["probes"]),
                    "search_history": [
                        {
                            "rate": rate,
                            "sustained": bool(ok),
                            "p99_ms": p99 * 1e3,
                        }
                        for rate, ok, p99 in search["history"]
                    ],
                    "slo_p99_ms": float(slo_p99 * 1e3),
                    "slo_source": (
                        "fixed" if slo_ms is not None else "adaptive"
                    ),
                    "unloaded_p99_ms": float(unloaded_p99 * 1e3),
                    "latency_ms": {
                        key: float(stats[key] * 1e3)
                        for key in (
                            "p50", "p90", "p99", "mean", "max"
                        )
                    },
                    "phases_ms": {
                        phase: {
                            "mean": float(
                                values["mean"] * 1e3
                            ),
                            "p99": float(values["p99"] * 1e3),
                        }
                        for phase, values in stats["phases"].items()
                    },
                    "jobs": int(best.result.jobs),
                    "makespan_cycles": int(
                        poisson_run.result.makespan_cycles
                    ),
                    "requests_per_second_sim": float(
                        requests_per_second(
                            requests,
                            poisson_run.result.makespan_cycles
                            / SERVING_CLOCK_HZ,
                        )
                    ),
                    "synchronous_rps": float(
                        sync_run.achieved_rate
                    ),
                    "pipelined_rps": float(
                        pipelined_run.achieved_rate
                    ),
                    "pipeline_speedup": float(
                        pipelined_run.achieved_rate
                        / max(sync_run.achieved_rate, 1e-9)
                    ),
                    "queue": best.result.health["queue"],
                }
                if chaos_health is not None:
                    record["chaos_health"] = chaos_health
                if profile:
                    record["profile"] = [
                        {
                            key: (
                                value
                                if key in ("job", "batch", "shard")
                                else float(value * 1e3)
                            )
                            for key, value in batch_row.items()
                        }
                        for batch_row in best.result.profile
                    ]
                records.append(record)

    # Headline before/after: the best pipelining win at the largest
    # pool — the number the synchronous driver leaves on the table.
    top_workers = max(spec.workers)
    at_top = [
        record
        for record in records
        if record["workers"] == top_workers
    ]
    headline = max(at_top, key=lambda r: r["pipeline_speedup"])
    payload = {
        "benchmark": "serving_load",
        "backends": list(spec.backends),
        "precision_profile": profile_cap.name,
        **harness.common_head(),
        "max_batch": int(max_batch),
        "max_wait": float(max_wait),
        "clock_hz": SERVING_CLOCK_HZ,
        "worker_counts": [int(count) for count in spec.workers],
        "requests": int(requests),
        "arrival_seed": int(arrival_seed),
        "fault_rate": float(fault_rate),
        "fault_seed": (
            int(fault_seed) if fault_rate > 0.0 else None
        ),
        "transport": resolved_transport,
        "fused": bool(fused),
        "slo": {
            "p99_ms": (
                float(slo_ms) if slo_ms is not None else None
            ),
            "source": "fixed" if slo_ms is not None else "adaptive",
            "factor": (
                None if slo_ms is not None else LOAD_SLO_FACTOR
            ),
        },
        "pipelining": {
            "workers": int(top_workers),
            "net": headline["net"],
            "backend": headline["backend"],
            "before_rps": headline["synchronous_rps"],
            "after_rps": headline["pipelined_rps"],
            "speedup": headline["pipeline_speedup"],
        },
        "records": records,
    }
    return write_benchmark_artifact(
        payload, "BENCH_load.json", out_dir
    )


def render_load_benchmark(payload: dict) -> str:
    """Human-readable summary of a load benchmark payload."""
    columns = [
        Column("net", "net"),
        Column("backend", "backend"),
        Column("workers", "workers"),
        Column(
            "sustained req/s", "sustained_rps", format=",.0f"
        ),
        Column(
            "p50 ms", lambda row: row["latency_ms"]["p50"],
            format=".2f",
        ),
        Column(
            "p99 ms", lambda row: row["latency_ms"]["p99"],
            format=".2f",
        ),
        Column("SLO ms", "slo_p99_ms", format=".2f"),
        Column(
            "queue ms",
            lambda row: row["phases_ms"]["queue_wait"]["mean"],
            format=".2f",
        ),
        Column(
            "compute ms",
            lambda row: row["phases_ms"]["compute"]["mean"],
            format=".2f",
        ),
        Column("sync req/s", "synchronous_rps", format=",.0f"),
        Column("pipelined req/s", "pipelined_rps", format=",.0f"),
        Column(
            "speedup", "pipeline_speedup", format=".2f", suffix="x"
        ),
        Column(
            "bit-identical",
            lambda row: yes_no(
                all(row["bit_identical"].values())
            ),
        ),
    ]
    chaos = (
        f", chaos {payload['fault_rate']:g} "
        f"(seed {payload['fault_seed']})"
        if payload.get("fault_rate", 0.0) > 0.0
        else ""
    )
    table = render_columns(
        payload["records"],
        columns,
        title=(
            "serving gateway load "
            f"(p99 SLO: {payload['slo']['source']}, transport "
            f"{payload['transport']}"
            f"{', fused' if payload.get('fused') else ''}, "
            f"max_batch {payload['max_batch']}, scale "
            f"{payload['scale']}, input {payload['input_size']}"
            f"{chaos})"
        ),
    )
    headline = payload["pipelining"]
    table += (
        f"\n\npipelined dispatch vs synchronous driver at "
        f"{headline['workers']} workers "
        f"({headline['net']}/{headline['backend']}): "
        f"{headline['before_rps']:,.0f} -> "
        f"{headline['after_rps']:,.0f} req/s "
        f"({headline['speedup']:.2f}x)"
    )
    profiled = [
        record
        for record in payload["records"]
        if record.get("profile")
    ]
    if profiled:
        table += "\n\n" + render_load_profile(payload)
    return table


def render_load_profile(payload: dict, per_point: int = 8) -> str:
    """One-table per-batch phase breakdown (``--load --profile``):
    wall milliseconds spent coalescing, writing the batch over the
    transport, computing in the worker and reassembling, for the
    first ``per_point`` batches of every point's winning run."""
    rows = []
    for record in payload["records"]:
        batches = record.get("profile") or []
        for row in batches[:per_point]:
            rows.append(
                {
                    **row,
                    "point": (
                        f"{record['net']}/{record['backend']}/"
                        f"{record['workers']}w"
                    ),
                    "shard": (
                        "degraded"
                        if row["shard"] is None
                        else row["shard"]
                    ),
                }
            )
    if not rows:
        return "no per-batch profile recorded (re-run with --profile)"
    columns = [
        Column("point", "point"),
        Column("job", "job"),
        Column("batch", "batch"),
        Column("shard", "shard"),
        Column("coalesce ms", "coalesce", format=".3f"),
        Column("shm write ms", "shm_write", format=".3f"),
        Column("compute ms", "compute", format=".3f"),
        Column("reassemble ms", "reassemble", format=".3f"),
    ]
    return render_columns(
        rows,
        columns,
        title="per-batch host-time phase breakdown (ms)",
    )


#: Fault-tolerance benchmark defaults: injected crash-dominated fault
#: rates swept at every worker count.  0.0 is the degradation
#: baseline; >= 0.10 satisfies the "sustained completion under >= 10%
#: crash rate" artifact contract.
DEFAULT_FAULT_RATES = (0.0, 0.1, 0.25)
DEFAULT_FAULT_KINDS = ("crash", "error", "slow")


def run_fault_tolerance_benchmark(
    models: "tuple[str, ...] | list[str]" = ("mobilenet_v2",),
    worker_counts: "tuple[int, ...] | list[int]" = DEFAULT_WORKER_COUNTS,
    fault_rates: "tuple[float, ...] | list[float]" = DEFAULT_FAULT_RATES,
    requests: int = 24,
    fault_seed: int = 110,
    kinds: "tuple[str, ...]" = DEFAULT_FAULT_KINDS,
    quick: bool = False,
    scheduling: bool = True,
    config: CoreConfig | None = None,
    engine: str = "tempus",
    max_batch: int = 4,
    precision="int8",
    job_deadline: float = 2.0,
    out_dir: "str | Path | None" = "results",
) -> dict:
    """Chaos benchmark: serving under injected faults
    (``results/BENCH_faults.json``).

    For every (model, worker count, fault rate) point a seeded
    deterministic :class:`~repro.serve.faults.FaultPlan` is injected
    into the shard workers and the stream is served to completion.
    Three things are recorded per point:

    * **correctness** — outputs and cycle totals verified bit-identical
      to the single-process :class:`NetworkRunner` reference (the
      stream is never aborted: crashes are redispatched, hung shards
      killed by deadline, a collapsed pool degrades in-process);
    * **degradation** — simulated makespan and host wall time relative
      to the same worker count's fault-free point (redispatching
      skews work onto surviving shards, so the makespan grows with
      the crash rate);
    * **recovery telemetry** — the supervisor's health counters
      (restarts, retries, redispatches, deadline misses, degraded
      jobs).

    Args:
        models: zoo model names.
        worker_counts: shard-pool sizes to sweep.
        fault_rates: injected fault probabilities per (job, attempt).
        requests: single-image requests per stream.
        fault_seed: seed of the deterministic fault plans.
        kinds: fault kinds the plans draw (hang is exercised by the
            chaos test suite; including it here multiplies wall time
            by the deadline per hang).
        quick: smaller width/resolution preset for smoke runs.
        scheduling: apply burst-aware tile scheduling when lowering.
        config: array geometry (defaults to 16x16 INT8).
        engine: compute backend served.
        max_batch: dynamic-batching coalescing limit.
        precision: per-layer precision profile served.
        job_deadline: hang/slow detection deadline in seconds.
        out_dir: where BENCH_faults.json is written (None = don't).

    Returns:
        the record written to the artifact.
    """
    from repro.serve import FaultPlan, ShardedRunner

    if requests < 1:
        raise DataflowError("requests must be >= 1")
    if any(rate < 0.0 or rate > 1.0 for rate in fault_rates):
        raise DataflowError("fault rates must be in [0, 1]")
    profile = precision_profile(precision)
    spec = SweepSpec(
        name="faults",
        nets=tuple(models),
        backends=(engine,),
        precisions=(profile,),
        workers=tuple(worker_counts),
        quick=quick,
        scheduling=scheduling,
    )
    engine = spec.backends[0]
    worker_counts = spec.workers
    harness = SweepHarness(spec, config)
    scale, input_size = harness.scale, harness.input_size

    reference_runner = harness.runner(engine, profile)
    config = reference_runner.config  # profile may widen the precision

    model_records = []
    for name in spec.nets:
        reference = reference_runner.run(name, requests)
        points = []
        baselines: dict = {}  # workers -> fault-free point
        for workers in worker_counts:
            for rate in fault_rates:
                plan = (
                    FaultPlan.random(
                        fault_seed,
                        rate,
                        kinds=kinds,
                        slow_seconds=0.02,
                    )
                    if rate > 0.0
                    else None
                )
                with ShardedRunner(
                    workers=workers,
                    config=config,
                    engine=engine,
                    scheduling=scheduling,
                    scale=scale,
                    input_size=input_size,
                    max_batch=max_batch,
                    precision=profile,
                    fault_plan=plan,
                    job_deadline=(
                        job_deadline if plan is not None else None
                    ),
                ) as server:
                    server.start(name)
                    # Warm pool + burst maps on a clean stream so the
                    # timed run measures recovery, not compilation.
                    server.run(name, max_batch)
                    result, seconds = measure(
                        lambda: server.run(name, requests)
                    )
                identical = bool(
                    np.array_equal(result.output, reference.output)
                    and result.conv_cycles == reference.conv_cycles
                )
                if not identical:
                    raise DataflowError(
                        f"{name}: sharded run with {workers} "
                        f"worker(s) at fault rate {rate} diverged "
                        "from the single-process reference"
                    )
                health = result.health
                makespan = max(
                    result.makespan_cycles,
                    health.get("degraded_cycles", 0),
                )
                point = {
                    "workers": int(workers),
                    "fault_rate": float(rate),
                    "completed": True,
                    "bit_identical_to_reference": identical,
                    "conv_cycles": int(result.conv_cycles),
                    "jobs": int(result.jobs),
                    "makespan_cycles": int(makespan),
                    "requests_per_second": float(
                        requests_per_second(
                            requests, makespan / SERVING_CLOCK_HZ
                        )
                    ),
                    "wall_seconds": float(seconds),
                    "host_images_per_second": float(
                        requests_per_second(requests, seconds)
                    ),
                    "health": health,
                }
                baseline = baselines.get(workers)
                if rate == 0.0 and baseline is None:
                    baselines[workers] = point
                elif baseline is not None:
                    # > 1.0 means faults stretched the metric.
                    point["makespan_degradation"] = float(
                        makespan / max(baseline["makespan_cycles"], 1)
                    )
                    point["wall_degradation"] = float(
                        seconds / max(baseline["wall_seconds"], 1e-9)
                    )
                points.append(point)
        model_records.append(
            {
                "model": name,
                "requests": int(requests),
                "reference_conv_cycles": int(reference.conv_cycles),
                "points": points,
                "all_streams_completed": all(
                    point["completed"] for point in points
                ),
            }
        )

    payload = {
        "benchmark": "fault_tolerance",
        "engine": engine,
        "config": {
            "k": config.k,
            "n": config.n,
            "precision": config.precision.name,
        },
        "precision_profile": profile.name,
        **harness.common_head(),
        "max_batch": int(max_batch),
        "job_deadline": float(job_deadline),
        "fault_seed": int(fault_seed),
        "fault_kinds": list(kinds),
        "fault_rates": [float(rate) for rate in fault_rates],
        "clock_hz": SERVING_CLOCK_HZ,
        "worker_counts": [int(count) for count in worker_counts],
        "models": model_records,
    }
    return write_benchmark_artifact(
        payload, "BENCH_faults.json", out_dir
    )


def render_fault_tolerance_benchmark(payload: dict) -> str:
    """Human-readable summary of a fault-tolerance payload."""
    rows = [
        {**point, "model": record["model"]}
        for record in payload["models"]
        for point in record["points"]
    ]
    columns = [
        Column("model", "model"),
        Column("workers", "workers"),
        Column("fault rate", "fault_rate", format=".2f"),
        Column("makespan cycles", "makespan_cycles", format=","),
        Column(
            "vs fault-free",
            lambda row: row.get("makespan_degradation", 1.0),
            format=".2f",
            suffix="x",
        ),
        Column("restarts", lambda row: row["health"]["restarts"]),
        Column("redisp", lambda row: row["health"]["redispatched"]),
        Column("retries", lambda row: row["health"]["retries"]),
        Column("degraded", lambda row: row["health"]["degraded_jobs"]),
        Column(
            "bit-identical",
            lambda row: yes_no(row["bit_identical_to_reference"]),
        ),
    ]
    config = payload["config"]
    return render_columns(
        rows,
        columns,
        title=(
            f"fault tolerance ({payload['engine']}) on "
            f"{config['k']}x{config['n']} {config['precision']} "
            f"(seed {payload['fault_seed']}, "
            f"kinds {'/'.join(payload['fault_kinds'])}, "
            f"deadline {payload['job_deadline']}s)"
        ),
    )


#: Precision-sweep defaults: three structurally dissimilar nets, the
#: three uniform paper precisions plus the standard mixed edge recipe.
DEFAULT_PRECISION_MODELS = DEFAULT_SERVING_MODELS


def run_precision_benchmark(
    models: "tuple[str, ...] | list[str]" = DEFAULT_PRECISION_MODELS,
    precisions: "tuple | list" = DEFAULT_PRECISION_SWEEP,
    batch: int = 4,
    quick: bool = False,
    scheduling: bool = True,
    config: CoreConfig | None = None,
    verify_sharded: "str | None" = "int4",
    sharded_workers: int = 2,
    out_dir: "str | Path | None" = "results",
) -> dict:
    """Sweep precision profiles on both engines — the paper's scaling
    axis (``results/BENCH_precision.json``).

    For every (model, profile) point both engines run the same batch;
    outputs are verified bit-identical across engines before the
    tempus:binary cycle ratio is recorded.  The binary CMAC's cycle
    cost is precision-independent (one atom per cycle regardless of
    operand width), while a tub burst lasts as long as its tile's
    largest magnitude — so the ratio must *improve monotonically* as
    precision drops (worst-case burst: 64 cycles at INT8, 4 at INT4,
    1 at INT2).  The per-model ``ratio_improves_monotonically`` flag
    pins that claim over the uniform profiles in the sweep.

    Args:
        models: zoo model names (the artifact contract wants >= 3).
        precisions: profile names/specs to sweep (uniform profiles are
            compared for monotonicity in descending width order; mixed
            profiles are recorded alongside).
        batch: images per network run (>= 1).
        quick: smaller width/resolution preset for smoke runs.
        scheduling: apply burst-aware tile scheduling when lowering.
        config: array geometry (k/n; each profile provisions its own
            precision).
        verify_sharded: profile at which sharded serving is verified
            bit-identical (outputs *and* cycles) to the single-process
            ``NetworkRunner.run`` — None skips the check.
        sharded_workers: worker count for that verification.
        out_dir: where BENCH_precision.json is written (None = don't).

    Returns:
        the record written to the artifact.
    """
    from repro.serve import ShardedRunner

    spec = SweepSpec(
        name="precision",
        nets=tuple(models),
        backends=("tempus", "binary"),
        precisions=tuple(precisions),
        batch=batch,
        quick=quick,
        scheduling=scheduling,
    )
    harness = SweepHarness(spec, config)
    config = harness.base_config
    profiles = [precision_profile(entry) for entry in precisions]

    model_records = []
    for name in spec.nets:
        sweep = []
        for profile in profiles:
            tempus_runner = harness.runner("tempus", profile)
            binary_runner = harness.runner("binary", profile)
            tempus_runner.run(name, 1)  # warm compile + burst maps
            binary_runner.run(name, 1)
            tempus, tempus_seconds = measure(
                lambda: tempus_runner.run(name, batch)
            )
            binary, binary_seconds = measure(
                lambda: binary_runner.run(name, batch)
            )
            if not np.array_equal(tempus.output, binary.output):
                raise DataflowError(
                    f"{name} @ {profile.name}: engines diverged — "
                    "dataflow compliance violated"
                )
            sweep.append(
                {
                    "precision": profile.name,
                    "layers": profile.describe(),
                    "uniform": profile.is_uniform,
                    "widest_width": profile.widest.width,
                    "worst_case_burst_cycles": (
                        profile.widest.worst_case_tub_cycles
                    ),
                    "outputs_bit_identical": True,
                    "engines": {
                        "tempus": engine_record(
                            tempus,
                            tempus_seconds,
                            energy_record(tempus_runner, name, tempus),
                        ),
                        "binary": engine_record(
                            binary,
                            binary_seconds,
                            energy_record(binary_runner, name, binary),
                        ),
                    },
                    "tempus_vs_binary_cycle_ratio": float(
                        tempus.conv_cycles / max(binary.conv_cycles, 1)
                    ),
                }
            )
        # The claim reads over uniform profiles, widest format first:
        # dropping precision must never make the ratio worse.
        uniform = sorted(
            (entry for entry in sweep if entry["uniform"]),
            key=lambda entry: -entry["widest_width"],
        )
        model_records.append(
            {
                "model": name,
                "batch": int(batch),
                "precisions": sweep,
                "ratio_improves_monotonically": all(
                    later["tempus_vs_binary_cycle_ratio"]
                    < earlier["tempus_vs_binary_cycle_ratio"]
                    for earlier, later in zip(uniform, uniform[1:])
                ),
            }
        )

    payload = {
        "benchmark": "precision_sweep",
        "config": {"k": config.k, "n": config.n},
        **harness.common_head(),
        "precisions": [profile.name for profile in profiles],
        "models": model_records,
    }

    if verify_sharded is not None:
        profile = precision_profile(verify_sharded)
        verify_model = spec.nets[0]
        # The verification profile need not be part of the sweep —
        # the harness builds (and caches) its runner on demand.
        reference_runner = harness.runner("tempus", profile)
        reference = reference_runner.run(verify_model, batch)
        with ShardedRunner(
            workers=sharded_workers,
            config=config,
            engine="tempus",
            scheduling=scheduling,
            scale=harness.scale,
            input_size=harness.input_size,
            precision=profile,
        ) as server:
            sharded = server.run(verify_model, batch)
        identical = bool(
            np.array_equal(sharded.output, reference.output)
            and sharded.conv_cycles == reference.conv_cycles
        )
        if not identical:
            raise DataflowError(
                f"sharded serving @ {profile.name} diverged from the "
                "single-process reference"
            )
        payload["sharded_verification"] = {
            "model": verify_model,
            "precision": profile.name,
            "workers": int(sharded_workers),
            "requests": int(batch),
            "bit_identical_outputs_and_cycles": identical,
        }

    return write_benchmark_artifact(
        payload, "BENCH_precision.json", out_dir
    )


def render_precision_benchmark(payload: dict) -> str:
    """Human-readable summary of a precision-sweep payload."""
    rows = [
        {
            **entry,
            "model": record["model"],
            "monotonic": record["ratio_improves_monotonically"],
        }
        for record in payload["models"]
        for entry in record["precisions"]
    ]
    columns = [
        Column("model", "model"),
        Column("precision", "layers"),
        Column(
            "tempus cycles",
            lambda row: row["engines"]["tempus"]["conv_cycles"],
            format=",",
        ),
        Column(
            "binary cycles",
            lambda row: row["engines"]["binary"]["conv_cycles"],
            format=",",
        ),
        Column(
            "tempus:binary",
            "tempus_vs_binary_cycle_ratio",
            format=".3f",
        ),
        Column(
            "img/Mcycle (tempus)",
            lambda row: (
                row["engines"]["tempus"]["images_per_million_cycles"]
            ),
            format=".3f",
        ),
        Column("monotonic", lambda row: yes_no(row["monotonic"])),
    ]
    config = payload["config"]
    lines = [
        render_columns(
            rows,
            columns,
            title=(
                f"precision sweep on {config['k']}x{config['n']} "
                f"(scale {payload['scale']}, "
                f"input {payload['input_size']})"
            ),
        )
    ]
    verification = payload.get("sharded_verification")
    if verification is not None:
        lines.append(
            f"sharded serving @ {verification['precision']} "
            f"({verification['workers']} workers, "
            f"{verification['model']}): bit-identical to "
            f"single-process run = "
            f"{yes_no(verification['bit_identical_outputs_and_cycles'])}"
        )
    return "\n\n".join(lines)


#: Backend-sweep default workload: three structurally dissimilar nets.
DEFAULT_BACKEND_MODELS = DEFAULT_SERVING_MODELS


def _mean_burst_cycles(net) -> float:
    """Mean burst length across a compiled network's weight tiles —
    the Fig. 7 statistic, at the network's own per-stage configs."""
    total = 0
    tiles = 0
    for stage in net.stages:
        for weights in stage.weights:
            bursts = cached_burst_cycle_map(
                weights, stage.config, net.code
            )
            total += int(bursts.sum())
            tiles += int(bursts.size)
    return total / max(tiles, 1)


def run_backend_benchmark(
    models: "tuple[str, ...] | list[str]" = DEFAULT_BACKEND_MODELS,
    backends: "tuple[str, ...] | list[str]" = DEFAULT_BACKEND_SWEEP,
    precisions: "tuple | list" = DEFAULT_BACKEND_PRECISIONS,
    batch: int = 4,
    quick: bool = False,
    scheduling: bool = True,
    config: CoreConfig | None = None,
    out_dir: "str | Path | None" = "results",
) -> dict:
    """Sweep compute backends x precision profiles
    (``results/BENCH_backends.json``).

    For every (model, precision) point each registered backend runs the
    same batch; outputs are verified bit-identical across *all*
    backends, and each backend's reference core (the real conv cores;
    the actual GemmEngine via im2col for the gemm backends) is driven
    on a probe image and pinned to the batched path in outputs *and*
    cycles, before cycles and per-image energy are recorded (only the
    cycle/energy accounting may differ — every backend computes the
    exact integer convolution).  Two claims are pinned per point:

    * tubGEMM's value-aware cycle count is strictly below tuGEMM's at
      equal precision (the hybrid-encoding win — 2s-unary weight
      streaming vs the pure-unary replay);
    * the temporal:binary cycle ratio of every temporal backend
      improves as precision drops, while binary cycles stay flat.

    Energy: every backend record carries ``pj_per_image`` from the
    deployed-array power model (:func:`~repro.profiling.energy
    .network_energy`), and each (model, precision) point carries the
    paper's Sec. V-C per-burst comparison
    (:func:`~repro.profiling.energy.workload_energy`) at the model's
    mean burst length.

    Args:
        models: zoo model names (the artifact contract wants >= 3).
        backends: registered backend names to sweep.
        precisions: precision profiles to sweep.
        batch: images per network run (>= 1).
        quick: smaller width/resolution preset for smoke runs.
        scheduling: apply burst-aware tile scheduling when lowering.
        config: array geometry (k/n).
        out_dir: where BENCH_backends.json is written (None = don't).

    Returns:
        the record written to the artifact.
    """
    spec = SweepSpec(
        name="backends",
        nets=tuple(models),
        backends=tuple(backends),
        precisions=tuple(precisions),
        batch=batch,
        quick=quick,
        scheduling=scheduling,
    )
    # This sweep's records carry per-backend engine metadata, so mixed
    # "first/interior/last" profiles don't belong here — get_backend
    # rejects them like the pre-spec driver did.
    backend_names = tuple(
        get_backend(name).name for name in spec.backends
    )
    harness = SweepHarness(spec, config)
    config = harness.base_config
    profiles = [precision_profile(entry) for entry in precisions]

    model_records = []
    for model in spec.nets:
        sweep = []
        for profile in profiles:
            results = {}
            records = {}
            for name in backend_names:
                runner = harness.runner(name, profile)
                runner.run(model, 1)  # warm compile + burst maps
                result, seconds = measure(
                    lambda: runner.run(model, batch)
                )
                results[name] = result
                records[name] = engine_record(
                    result,
                    seconds,
                    energy_record(runner, model, result),
                )
                records[name]["temporal"] = get_backend(name).temporal
                # The batched path computes outputs through the shared
                # golden kernels regardless of backend, so comparing
                # batched outputs alone would be vacuous.  Drive each
                # backend's *reference* core (real conv cores; the
                # actual GemmEngine via im2col for tugemm/tubgemm) on
                # one image and pin outputs AND cycles to the batched
                # run — this is where a broken engine would surface.
                probe = runner.synthesize_batch(model, 1)
                batched_probe = runner.run(model, probe)
                reference_probe = runner.run_per_image(model, probe)
                if not (
                    np.array_equal(
                        batched_probe.output, reference_probe.output
                    )
                    and batched_probe.conv_cycles
                    == reference_probe.conv_cycles
                ):
                    raise DataflowError(
                        f"{model} @ {profile.name}: backend {name!r} "
                        "reference core diverged from the batched path"
                    )
                records[name]["reference_path_verified"] = True
            reference_name = backend_names[0]
            reference = results[reference_name]
            for name, result in results.items():
                if not np.array_equal(result.output, reference.output):
                    raise DataflowError(
                        f"{model} @ {profile.name}: backend {name!r} "
                        f"diverged from {reference_name!r} — outputs "
                        "must be bit-identical across backends"
                    )
            entry = {
                "net": model,
                "precision": profile.name,
                "layers": profile.describe(),
                "outputs_bit_identical": True,
                "backends": records,
            }
            if "binary" in results:
                binary = results["binary"]
                entry["vs_binary_cycles"] = {
                    name: float(
                        results[name].conv_cycles
                        / max(binary.conv_cycles, 1)
                    )
                    for name in backend_names
                    if name != "binary"
                }
                if "tempus" in results:
                    entry["tempus_vs_binary_cycle_ratio"] = entry[
                        "vs_binary_cycles"
                    ]["tempus"]
                entry["vs_binary_energy"] = {
                    name: float(
                        records[name]["energy"]["pj_per_image"]
                        / max(
                            records["binary"]["energy"]["pj_per_image"],
                            1e-12,
                        )
                    )
                    for name in backend_names
                    if name != "binary"
                }
            if "tugemm" in results and "tubgemm" in results:
                below = bool(
                    results["tubgemm"].conv_cycles
                    < results["tugemm"].conv_cycles
                )
                if not below:
                    raise DataflowError(
                        f"{model} @ {profile.name}: tubGEMM cycles "
                        f"({results['tubgemm'].conv_cycles}) not below "
                        f"tuGEMM's ({results['tugemm'].conv_cycles}) — "
                        "the hybrid-encoding claim is violated"
                    )
                entry["tubgemm_below_tugemm"] = below
            # The paper's Sec. V-C per-burst comparison at this
            # model/precision point (deployed INT8 arrays, the model's
            # mean burst length).
            net = harness.runner(backend_names[0], profile).compile(
                model
            )
            comparison = workload_energy(
                model, config, _mean_burst_cycles(net)
            )
            entry["burst_energy"] = {
                "mean_burst_cycles": comparison.burst_cycles,
                "binary_pj": comparison.binary_energy_pj,
                "tub_pj": comparison.tub_energy_pj,
                "energy_gap": comparison.energy_gap,
            }
            sweep.append(entry)
        model_records.append({"model": model, "precisions": sweep})

    payload = {
        "benchmark": "backend_sweep",
        "config": {"k": config.k, "n": config.n},
        **harness.common_head(),
        "batch": spec.batch,
        "backends": list(backend_names),
        "precisions": [profile.name for profile in profiles],
        "models": model_records,
    }
    return write_benchmark_artifact(
        payload, "BENCH_backends.json", out_dir
    )


def render_backend_benchmark(payload: dict) -> str:
    """Human-readable summary of a backend-sweep payload."""
    rows = [
        {
            "net": entry["net"],
            "layers": entry["layers"],
            "backend": name,
            "stats": entry["backends"][name],
            "vs_binary": entry.get("vs_binary_cycles", {}).get(
                name, 1.0
            ),
            "bit_identical": entry["outputs_bit_identical"],
        }
        for record in payload["models"]
        for entry in record["precisions"]
        for name in payload["backends"]
    ]
    columns = [
        Column("net", "net"),
        Column("precision", "layers"),
        Column("backend", "backend"),
        Column(
            "cycles",
            lambda row: row["stats"]["conv_cycles"],
            format=",",
        ),
        Column(
            "pJ/image",
            lambda row: row["stats"]["energy"]["pj_per_image"],
            format=",.0f",
        ),
        Column("cycles vs binary", "vs_binary", format=".3f"),
        Column(
            "bit-identical",
            lambda row: yes_no(row["bit_identical"]),
        ),
    ]
    config = payload["config"]
    return render_columns(
        rows,
        columns,
        title=(
            f"compute-backend sweep on {config['k']}x{config['n']} "
            f"(scale {payload['scale']}, input {payload['input_size']}, "
            f"batch {payload['batch']})"
        ),
    )


#: LLM decode benchmark defaults: the extension transformer block
#: served token-by-token on every registered backend at the paper's
#: three uniform precisions, with sharded re-verification at these
#: worker counts.
DEFAULT_LLM_MODEL = "tiny_llm"
DEFAULT_LLM_WORKERS = (1, 2)


def _linear_stage_parity(net, stage_index: int, backend_name: str,
                         tokens: int) -> bool:
    """Cross-check the executor's value-aware accounting of one linear
    stage against the standalone :class:`~repro.gemm.llm.TubMatVec`
    GEMV engine (the Sec. VI future-work model the op-graph IR lowers).

    A linear stage is a per-token GEMV, so the executor's cycles must
    be the engine's per-token count scaled by the token axis plus the
    backend's fixed pipeline terms:

    * binary: ``binary_cycles * tokens + pipeline_latency``
    * tempus: ``tempus_cycles * tokens + pipeline_latency + 1``
    * gemm baselines: ``tempus_cycles * tokens`` (flat accounting,
      with tuGEMM's replayed-unary cycle law substituted).
    """
    from repro.gemm.llm import project_linear_stage

    stage = net.stages[stage_index]
    backend = get_backend(backend_name)
    got = sum(
        backend.layer_cycles(
            stage, weights, net.code, out_pixels=tokens
        )
        for weights in stage.weights
    )
    cycle_code = getattr(backend, "cycle_code", None)
    engine = project_linear_stage(
        stage,
        code=cycle_code(stage.config) if cycle_code else net.code,
    )
    latency = stage.config.pipeline_latency
    if backend_name == "binary":
        expect = engine.binary_cycles * tokens + latency
    elif backend_name == "tempus":
        expect = engine.tempus_cycles * tokens + latency + 1
    else:
        expect = engine.tempus_cycles * tokens
    return got == expect


def run_llm_benchmark(
    backends: "tuple[str, ...] | list[str]" = DEFAULT_BACKEND_SWEEP,
    precisions: "tuple | list" = DEFAULT_BACKEND_PRECISIONS,
    tokens: "int | None" = None,
    quick: bool = False,
    scheduling: bool = True,
    config: CoreConfig | None = None,
    sharded_workers: "tuple[int, ...] | list[int]" = DEFAULT_LLM_WORKERS,
    out_dir: "str | Path | None" = "results",
) -> dict:
    """Token-by-token autoregressive decode of the extension
    transformer block (``results/BENCH_llm.json``).

    The ``tiny_llm`` zoo model lowers the op-graph IR end-to-end: six
    linear projections (attention q/k/v/o and the MLP pair) plus the
    folded residual adds and requant norms.  Linear stages compile
    with ``dynamic_hw``, so one compiled network serves every prefix
    length — decode step ``t`` runs the growing (d_out x d_in) x t
    GEMM over the first ``t`` tokens of a fixed synthesized stream,
    exactly the growing-sequence shape profile of KV-cache-less
    autoregressive serving.

    Per (backend, precision) point, every decode step is verified
    bit-identical (outputs AND cycles) across the batched, fused and
    per-image reference paths, sharded serving is re-verified at
    several prefix checkpoints for every worker count, and the first
    projection's cycle accounting is pinned to the standalone
    :class:`~repro.gemm.llm.TubMatVec` GEMV engine.  Recorded per
    point: the per-step cycle series, per-token latency percentiles
    (p50/p90/p99 in cycles and microseconds at the serving clock) and
    steady-state host decode throughput.

    Args:
        backends: registered backend names to sweep.
        precisions: uniform precision profiles to sweep.
        tokens: decode length (defaults to the preset input size — 64
            full, 32 quick).
        quick: smaller width/resolution preset for smoke runs.
        scheduling: apply burst-aware tile scheduling when lowering.
        config: array geometry (k/n).
        sharded_workers: shard-pool sizes re-verified per point.
        out_dir: where BENCH_llm.json is written (None = don't).

    Returns:
        the record written to the artifact.
    """
    from repro.models.layers import LinearSpec
    from repro.runtime.executor import BatchExecutor
    from repro.serve import ShardedRunner
    from repro.utils.rng import make_rng

    model = DEFAULT_LLM_MODEL
    spec = SweepSpec(
        name="llm",
        nets=(model,),
        backends=tuple(backends),
        precisions=tuple(precisions),
        workers=tuple(sharded_workers),
        batch=1,
        quick=quick,
        scheduling=scheduling,
    )
    backend_names = tuple(
        get_backend(name).name for name in spec.backends
    )
    harness = SweepHarness(spec, config)
    config = harness.base_config
    profiles = [precision_profile(entry) for entry in precisions]
    tokens = harness.input_size if tokens is None else int(tokens)
    if tokens < 1:
        raise DataflowError("decode length must be >= 1 token")
    # Sharded serving re-verification checkpoints: short, mid and full
    # prefixes (deduplicated for tiny decode lengths).
    checkpoints = sorted(
        {1, max(1, tokens // 4), max(1, tokens // 2), tokens}
    )
    cache_before = burst_map_cache_stats()

    records = []
    block = None
    for profile in profiles:
        for name in backend_names:
            runner = harness.runner(name, profile)
            net = runner.compile(model)
            if block is None:
                block = [
                    {
                        "name": stage.name,
                        "d_out": int(stage.layer.out_features),
                        "d_in": int(stage.layer.in_features),
                        "residual": stage.residual_from is not None,
                    }
                    for stage in net.stages
                    if isinstance(stage.layer, LinearSpec)
                ]
            plain = runner.executor(model)
            fused = BatchExecutor(net, None, fused=True)
            # One fixed stream per decode length; every backend and
            # precision decodes prefixes of the same token sequence
            # (clipped per profile by the activation format itself).
            rng = make_rng("llm-decode", model, int(tokens))
            stream = np.asarray(
                net.precision.random_array(
                    rng, (1, net.input_shape[0], tokens, 1)
                ),
                dtype=np.int64,
            )
            per_token = []
            reference_at: dict = {}
            for step in range(1, tokens + 1):
                prefix = stream[:, :, :step, :]
                job = plain.run_job(prefix)
                fused_job = fused.run_job(prefix)
                reference = runner.run_per_image(model, prefix)
                identical = bool(
                    np.array_equal(job["output"], fused_job["output"])
                    and job["conv_cycles"] == fused_job["conv_cycles"]
                    and job["stage_cycles"]
                    == fused_job["stage_cycles"]
                    and np.array_equal(
                        job["output"], reference.output
                    )
                    and job["conv_cycles"] == reference.conv_cycles
                )
                if not identical:
                    raise DataflowError(
                        f"{model} @ {name}/{profile.name}: decode "
                        f"step {step} diverged across the batched/"
                        "fused/per-image paths"
                    )
                per_token.append(
                    {
                        "token": step,
                        "conv_cycles": int(job["conv_cycles"]),
                    }
                )
                if step in checkpoints:
                    reference_at[step] = job
            sharded_ok = True
            for workers in spec.workers:
                with ShardedRunner(
                    workers=workers,
                    config=runner.config,
                    engine=name,
                    scheduling=scheduling,
                    scale=harness.scale,
                    input_size=harness.input_size,
                    precision=profile,
                ) as server:
                    server.start(model)
                    for step in checkpoints:
                        sharded = server.run(
                            model, stream[:, :, :step, :]
                        )
                        job = reference_at[step]
                        if not (
                            np.array_equal(
                                sharded.output, job["output"]
                            )
                            and sharded.conv_cycles
                            == job["conv_cycles"]
                        ):
                            raise DataflowError(
                                f"{model} @ {name}/{profile.name}: "
                                f"sharded decode ({workers} workers, "
                                f"{step} tokens) diverged from the "
                                "single-process reference"
                            )
            parity = _linear_stage_parity(net, 0, name, tokens)
            if not parity:
                raise DataflowError(
                    f"{model} @ {name}/{profile.name}: linear-stage "
                    "cycle accounting diverged from the TubMatVec "
                    "GEMV engine"
                )
            # Steady state by construction: the decode loop above
            # already compiled the net and warmed every burst map.
            _, seconds = measure(
                lambda: [
                    plain.run_job(stream[:, :, :step, :])
                    for step in range(1, tokens + 1)
                ]
            )
            cycles = np.asarray(
                [entry["conv_cycles"] for entry in per_token],
                dtype=np.int64,
            )
            p50, p90, p99 = (
                float(value)
                for value in np.percentile(cycles, (50, 90, 99))
            )
            records.append(
                {
                    "net": model,
                    "backend": name,
                    "precision": profile.name,
                    "layers": profile.describe(),
                    "tokens": int(tokens),
                    "conv_cycles": int(cycles[-1]),
                    "per_token": per_token,
                    "latency_cycles": {
                        "p50": p50,
                        "p90": p90,
                        "p99": p99,
                        "mean": float(cycles.mean()),
                    },
                    "latency_us": {
                        "p50": p50 * 1e6 / SERVING_CLOCK_HZ,
                        "p90": p90 * 1e6 / SERVING_CLOCK_HZ,
                        "p99": p99 * 1e6 / SERVING_CLOCK_HZ,
                    },
                    "cycles_monotone_nondecreasing": bool(
                        np.all(np.diff(cycles) >= 0)
                    ),
                    "bit_identical": True,
                    "sharded_bit_identical": sharded_ok,
                    "matvec_parity": parity,
                    "wall_seconds": float(seconds),
                    "host_tokens_per_second": float(
                        tokens / max(seconds, 1e-12)
                    ),
                }
            )

    cache_after = burst_map_cache_stats()
    payload = {
        "benchmark": "llm_decode",
        "model": model,
        "config": {"k": config.k, "n": config.n},
        **harness.common_head(),
        "tokens": int(tokens),
        "clock_hz": SERVING_CLOCK_HZ,
        "backends": list(backend_names),
        "precisions": [profile.name for profile in profiles],
        "worker_counts": [int(count) for count in spec.workers],
        "sharded_checkpoints": [int(step) for step in checkpoints],
        "block": block,
        "records": records,
        # Growing-sequence shapes must not churn the burst-map cache:
        # maps key on weight content, not output pixels, so the whole
        # sweep adds one entry per (weight tensor, geometry) pair.
        "burst_map_cache_totals": {
            "entries": cache_after["entries"],
            "entries_added": (
                cache_after["entries"] - cache_before["entries"]
            ),
            "hits": cache_after["hits"] - cache_before["hits"],
            "misses": cache_after["misses"] - cache_before["misses"],
        },
    }
    return write_benchmark_artifact(payload, "BENCH_llm.json", out_dir)


def render_llm_benchmark(payload: dict) -> str:
    """Human-readable summary of an LLM decode payload."""
    columns = [
        Column("backend", "backend"),
        Column("precision", "layers"),
        Column("tokens", "tokens"),
        Column("total cycles", "conv_cycles", format=","),
        Column(
            "p50 cyc/tok",
            lambda row: row["latency_cycles"]["p50"],
            format=",.0f",
        ),
        Column(
            "p99 cyc/tok",
            lambda row: row["latency_cycles"]["p99"],
            format=",.0f",
        ),
        Column(
            "host tok/s",
            "host_tokens_per_second",
            format=",.0f",
        ),
        Column(
            "bit-identical",
            lambda row: yes_no(
                row["bit_identical"]
                and row["sharded_bit_identical"]
            ),
        ),
    ]
    config = payload["config"]
    dims = " + ".join(
        f"{stage['d_in']}x{stage['d_out']}"
        for stage in payload.get("block", [])
    )
    return render_columns(
        payload["records"],
        columns,
        title=(
            f"autoregressive decode ({payload['model']}: {dims}) on "
            f"{config['k']}x{config['n']} "
            f"(scale {payload['scale']}, {payload['tokens']} tokens, "
            f"workers {payload['worker_counts']})"
        ),
    )


def render_benchmark(payload: dict) -> str:
    """Human-readable summary of a benchmark payload."""
    columns = [
        Column("model", "model"),
        Column("batch", "batch"),
        Column(
            "tempus cycles",
            lambda row: row["engines"]["tempus"]["conv_cycles"],
            format=",",
        ),
        Column(
            "binary cycles",
            lambda row: row["engines"]["binary"]["conv_cycles"],
            format=",",
        ),
        Column(
            "img/Mcycle (tempus)",
            lambda row: (
                row["engines"]["tempus"]["images_per_million_cycles"]
            ),
            format=".3f",
        ),
        Column(
            "cache hit",
            lambda row: row["engines"]["tempus"]["cache"]["hit_rate"],
            format=".2f",
        ),
        Column(
            "sched gain",
            "scheduling_speedup",
            format=".3f",
            suffix="x",
        ),
    ]
    config = payload["config"]
    table = render_columns(
        payload["models"],
        columns,
        title=(
            f"batched network inference on {config['k']}x{config['n']} "
            f"{payload.get('precision_layers', config['precision'])} "
            f"(scale {payload['scale']}, input {payload['input_size']})"
        ),
    )
    speed = payload.get("host_speed")
    if speed:
        table += (
            f"\n\nhost speed ({speed['model']}, "
            f"{speed['workers']} worker, {speed['requests']} "
            "requests): "
            f"{speed['before']['host_images_per_second']:,.0f} -> "
            f"{speed['after']['host_images_per_second']:,.0f} "
            f"img/s host ({speed['host_speedup']:.1f}x: fused + "
            f"{speed['after']['transport']} transport + persistent "
            "burst cache), bit-identical"
        )
    return table
