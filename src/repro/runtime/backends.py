"""Pluggable compute-backend registry for the network runtime.

The paper family puts four MAC-unit designs on the same axis: the
binary CMAC (NVDLA's value-independent baseline), the Tempus PCU (the
paper's temporal-unary convolution core), and the two GEMM-dataflow
ancestors tuGEMM (ISCAS'23, pure unary x pure unary) and tubGEMM
(ISVLSI'23, binary x 2s-unary).  A :class:`ComputeBackend` bundles
everything the runtime needs to execute a compiled network on one of
those designs:

* **core construction** (:meth:`ComputeBackend.make_core`) — the object
  the per-image reference path drives layer by layer.  Binary and
  tempus return the real simulated cores (all execution modes); the
  GEMM backends return a :class:`GemmConvCore` adapter that lowers each
  conv layer to im2col and runs it through the *actual*
  :class:`~repro.gemm.base.GemmEngine` implementation.
* **cycle model** (:meth:`ComputeBackend.layer_cycles`) — value-aware
  for the temporal designs: cycles are derived from the actual
  quantized weight magnitudes through the burst-map machinery
  (:func:`~repro.core.latency.cached_burst_cycle_map`), so zero and
  small-magnitude operands cost fewer cycles (tubGEMM's
  "sparsity-effective" claim), not the worst-case bound.  The binary
  CMAC stays value-independent (one atom per cycle).
* **energy coefficients** (:attr:`ComputeBackend.array`) — which
  synthesized array's power drives the per-network energy estimate
  (:func:`repro.profiling.energy.network_energy`).

Backends register by name (:func:`register_backend`) so new MAC-unit
designs plug into the whole stack — lowering, batched execution,
per-image reference, sharded serving, the CLI and the benchmarks —
without touching the runtime.  :func:`check_backend` is the *single*
name-validation point; every layer raises the same
:class:`~repro.errors.DataflowError` listing the registered backends.

Per-stage mixing: a :class:`BackendProfile` names a backend per layer
position (first / interior / last), composing with
:class:`~repro.quant.profile.PrecisionProfile` — e.g. binary INT8 edge
stages around tubGEMM INT4 interior stages.  Outputs are bit-identical
across backends by construction (every backend computes the exact
integer convolution); only cycles and energy differ.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.latency import cached_burst_cycle_map
from repro.errors import DataflowError
from repro.nvdla.config import CoreConfig
from repro.nvdla.conv_core import ConvResult
from repro.nvdla.dataflow import ConvShape, conv_atoms, im2col
from repro.unary.encoding import PureUnaryCode, TwosUnaryCode, UnaryCode

#: Backend assumed when a compiled stage carries no explicit backend
#: (networks lowered before the registry existed).
DEFAULT_BACKEND = "tempus"


class ComputeBackend(ABC):
    """One MAC-unit design, as seen by the network runtime.

    Attributes:
        name: registry key (lower-case).
        description: one-line design summary.
        temporal: True when the cycle cost is value-dependent (derived
            from operand magnitudes); False for fixed-latency designs.
        array: which synthesized array powers the energy model —
            ``"binary"`` (CMAC grid) or ``"tub"`` (temporal PE array).
    """

    name: str = "abstract"
    description: str = ""
    temporal: bool = False
    array: str = "binary"

    # -- cycle model ---------------------------------------------------
    @abstractmethod
    def conv_cycles(
        self,
        weights: np.ndarray,
        out_pixels: int,
        config: CoreConfig,
        code: UnaryCode,
    ) -> int:
        """Per-image cycles of one conv layer *group* on this backend.

        Args:
            weights: the group's (K, C, R, S) quantized weight tensor
                (schedule-permuted, exactly as executed).
            out_pixels: output pixels the layer produces.
            config: the stage's array geometry/precision.
            code: the network's unary code (temporal backends may
                substitute their own — see :meth:`cycle_code`).
        """

    def layer_cycles(
        self,
        stage,
        weights: np.ndarray,
        code: UnaryCode,
        out_pixels: "int | None" = None,
    ) -> int:
        """Per-image cycles of one group of a lowered
        :class:`~repro.runtime.lowering.StagePlan` — the entry point
        :class:`~repro.runtime.executor.BatchExecutor` accounts with.

        ``out_pixels`` overrides the layer's nominal output-pixel count
        for dynamic-shape stages (autoregressive decode: the token axis
        of a linear stage grows per step, and each token is one output
        pixel); None keeps the compiled geometry.
        """
        layer = stage.layer
        if out_pixels is None:
            out_pixels = layer.out_height * layer.out_width
        return self.conv_cycles(
            weights,
            out_pixels,
            stage.config,
            code,
        )

    # -- reference-path core -------------------------------------------
    @abstractmethod
    def make_core(self, config: CoreConfig, code: UnaryCode, mode: str):
        """A core object (``run_layer(activations, weights, stride,
        padding) -> ConvResult``) for the per-image reference path."""


class ReplayedUnaryCode(UnaryCode):
    """Latency model of tuGEMM's double streaming: the weight-side
    pure-unary train replays once per activation pulse, so a magnitude-m
    weight costs ``replay * m`` cycles, where ``replay`` bounds the
    activation train length (the activation format's max magnitude).

    This is a cycle model, not a codec — the "encoding" is the fully
    replayed train.  Using a :class:`UnaryCode` keeps tuGEMM accounting
    inside the shared (cached) burst-map machinery.
    """

    def __init__(self, replay: int) -> None:
        if replay < 1:
            raise DataflowError(f"replay factor must be >= 1, got {replay}")
        self.replay = int(replay)
        self.name = f"unary-replay{self.replay}x"

    def encode_magnitude(self, magnitude: int) -> tuple[int, ...]:
        return (1,) * (int(magnitude) * self.replay)

    def cycles_for_magnitude(self, magnitude: int) -> int:
        return int(magnitude) * self.replay

    def _cycles_array_from_magnitude(self, mags: np.ndarray) -> np.ndarray:
        return mags * self.replay

    def _magnitude_after(
        self, mags: np.ndarray, cycles: np.ndarray
    ) -> np.ndarray:
        return np.maximum(mags - cycles // self.replay, 0)


class GemmConvCore:
    """Per-image conv adapter over a real :class:`GemmEngine`.

    Each layer is lowered to im2col and multiplied through the actual
    gemm implementation (exact integer output — bit-identical to the
    golden convolution), while cycles come from the owning backend's
    tile-level model, which is what the batched executor accounts with
    — so the per-image and batched paths agree on outputs *and* cycles
    by construction.
    """

    def __init__(
        self,
        backend: "ComputeBackend",
        engine,
        config: CoreConfig,
        code: UnaryCode,
    ) -> None:
        self.backend = backend
        self.engine = engine
        self.config = config
        self.code = code

    def run_layer(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> ConvResult:
        activations = np.asarray(activations)
        weights = np.asarray(weights)
        if activations.ndim != 3 or weights.ndim != 4:
            raise DataflowError(
                "expected (C,H,W) activations and (K,C,R,S) weights"
            )
        channels, height, width = activations.shape
        kernels, w_channels, kernel_h, kernel_w = weights.shape
        if channels != w_channels:
            raise DataflowError(
                f"channel mismatch: {channels} activations vs "
                f"{w_channels} weights"
            )
        shape = ConvShape(
            in_channels=channels,
            in_height=height,
            in_width=width,
            out_channels=kernels,
            kernel_h=kernel_h,
            kernel_w=kernel_w,
            stride=stride,
            padding=padding,
        )
        patches = im2col(activations, shape)
        columns = weights.reshape(kernels, -1).T
        product = self.engine.multiply(patches, columns)
        output = np.ascontiguousarray(
            product.output.T.reshape(
                kernels, shape.out_height, shape.out_width
            )
        )
        return ConvResult(
            output=output,
            # The engine's native latency assumes a free-standing M x P
            # outer-product array; mapped onto the DLA's k x n geometry
            # the backend's tile model is authoritative (and shared
            # with the batched executor).
            cycles=self.backend.conv_cycles(
                weights, shape.output_pixels, self.config, self.code
            ),
            atoms=shape.kernel_groups(self.config.k)
            * shape.output_pixels
            * shape.atoms_per_pixel(self.config.n),
            macs=product.macs,
        )


def _flat_config(config: CoreConfig) -> CoreConfig:
    """The GEMM baselines have no PCU operand cache, so their steps
    carry no per-burst caching overhead."""
    if config.burst_overhead == 0:
        return config
    return dataclasses.replace(config, burst_overhead=0)


class BinaryBackend(ComputeBackend):
    """NVDLA's binary CMAC grid: one atom per cycle, value-independent."""

    name = "binary"
    description = "binary CMAC grid (value-independent, 1 atom/cycle)"
    temporal = False
    array = "binary"

    def conv_cycles(self, weights, out_pixels, config, code) -> int:
        kernels, channels, kernel_h, kernel_w = weights.shape
        atoms = conv_atoms(
            kernels, channels, kernel_h, kernel_w, out_pixels,
            config.k, config.n,
        )
        return atoms + config.pipeline_latency

    def make_core(self, config, code, mode):
        from repro.nvdla.conv_core import ConvolutionCore

        return ConvolutionCore(config, mode=mode)


class TempusBackend(ComputeBackend):
    """Tempus Core's PCU: 2s-unary weight streaming inside the NVDLA
    dataflow; burst length = the tile's largest weight magnitude."""

    name = "tempus"
    description = "Tempus PCU (2s-unary bursts in the NVDLA dataflow)"
    temporal = True
    array = "tub"

    def conv_cycles(self, weights, out_pixels, config, code) -> int:
        per_pixel = int(
            cached_burst_cycle_map(weights, config, code).sum()
        )
        return per_pixel * out_pixels + config.pipeline_latency + 1

    def make_core(self, config, code, mode):
        from repro.core.tempus_core import TempusCore

        return TempusCore(config, mode=mode, code=code)


class GemmBackend(ComputeBackend):
    """Common tile accounting for the GEMM-dataflow baselines: one
    outer-product step per (kernel-group, channel-block, ky, kx) tile
    per output pixel — no PCU operand cache, no output pipeline
    register — with the step length defined by the design's
    :meth:`cycle_code`."""

    temporal = True
    array = "tub"
    #: The operand codec the design streams (subclasses override).
    code: UnaryCode = TwosUnaryCode()

    def cycle_code(self, config: CoreConfig) -> UnaryCode:
        """The latency law of one tile step (defaults to the codec)."""
        return self.code

    def _engine(self, precision):
        """The real :class:`~repro.gemm.base.GemmEngine` the per-image
        reference path drives."""
        raise NotImplementedError

    def conv_cycles(self, weights, out_pixels, config, code) -> int:
        per_pixel = int(
            cached_burst_cycle_map(
                weights, _flat_config(config), self.cycle_code(config)
            ).sum()
        )
        return per_pixel * out_pixels

    def make_core(self, config, code, mode):
        _check_gemm_mode(self.name, mode)
        return GemmConvCore(
            self, self._engine(config.precision), config, code
        )


class TubGemmBackend(GemmBackend):
    """tubGEMM: binary activations x 2s-unary temporal weights; a tile
    step lasts ``max(1, ceil(max|w| / 2))`` cycles."""

    name = "tubgemm"
    description = "tubGEMM (binary x 2s-unary outer-product, ISVLSI'23)"
    #: The design is defined by 2s-unary weight streaming.
    code = TwosUnaryCode()

    def _engine(self, precision):
        from repro.gemm.tubgemm import TubGemm

        return TubGemm(precision)


class TuGemmBackend(GemmBackend):
    """tuGEMM: both operands stream pure-unary; the weight train
    replays once per activation pulse, so a tile step costs
    ``max(1, act_bound * max|w|)`` cycles, with the activation side
    bounded by the stage format's max magnitude (the weight side is
    value-aware).  The quadratic latency that motivated tubGEMM."""

    name = "tugemm"
    description = "tuGEMM (pure unary x pure unary outer-product, ISCAS'23)"
    #: The design streams pure unary on both sides.
    code = PureUnaryCode()

    def cycle_code(self, config: CoreConfig) -> UnaryCode:
        return ReplayedUnaryCode(config.precision.max_magnitude)

    def _engine(self, precision):
        from repro.gemm.tugemm import TuGemm

        return TuGemm(precision)


def _check_gemm_mode(name: str, mode: str) -> None:
    if mode != "fast":
        raise DataflowError(
            f"backend {name!r} has no {mode!r} simulation mode; the "
            "gemm reference path runs the real GemmEngine (use "
            "mode='fast')"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: "dict[str, ComputeBackend]" = {}


def register_backend(
    backend: ComputeBackend, replace: bool = False
) -> ComputeBackend:
    """Register a backend under its (lower-cased) name.

    Args:
        backend: the :class:`ComputeBackend` instance.
        replace: allow re-registering an existing name (for
            experiments that refine a built-in design).
    """
    name = str(backend.name).strip().lower()
    if not name:
        raise DataflowError("backend name must be non-empty")
    if "/" in name:
        raise DataflowError(
            f"backend name {name!r} may not contain '/' — that is the "
            "'first/interior/last' mixed-profile delimiter"
        )
    if backend.array not in ("binary", "tub"):
        raise DataflowError(
            f"backend {name!r} declares unknown power array "
            f"{backend.array!r} (expected 'binary' or 'tub')"
        )
    if name in _REGISTRY and not replace:
        raise DataflowError(
            f"backend {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[name] = backend
    return backend


def registered_backends() -> tuple:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def check_backend(name) -> str:
    """Validate a backend/engine name; returns the canonical key.

    This is the single validation point for the whole stack
    (executor, runner, sharded serving, benchmarks, CLI): every layer
    raises this same error, listing the registered backends.
    """
    if isinstance(name, ComputeBackend):
        name = name.name
    if not isinstance(name, str):
        raise DataflowError(
            f"compute backend must be a name, got {type(name).__name__}; "
            f"registered backends: {', '.join(registered_backends())}"
        )
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise DataflowError(
            f"unknown compute backend {name!r}; registered backends: "
            f"{', '.join(registered_backends())}"
        )
    return key


def get_backend(name) -> ComputeBackend:
    """Resolve a backend by name (see :func:`check_backend`)."""
    return _REGISTRY[check_backend(name)]


register_backend(BinaryBackend())
register_backend(TempusBackend())
register_backend(TuGemmBackend())
register_backend(TubGemmBackend())


# ----------------------------------------------------------------------
# Per-stage backend profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendProfile:
    """Backend of every layer in a network (mirror of
    :class:`~repro.quant.profile.PrecisionProfile`).

    Attributes:
        name: profile identifier.
        interior: backend of the interior (hidden) layers.
        first: optional override for the first layer (None = interior).
        last: optional override for the last layer (None = interior).
    """

    name: str
    interior: str
    first: "str | None" = None
    last: "str | None" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise DataflowError("backend profile name must be non-empty")
        object.__setattr__(self, "interior", check_backend(self.interior))
        for edge in ("first", "last"):
            value = getattr(self, edge)
            if value is not None:
                value = check_backend(value)
                object.__setattr__(
                    self, edge, None if value == self.interior else value
                )

    @property
    def is_uniform(self) -> bool:
        return self.first is None and self.last is None

    def spec_for(self, index: int, count: int) -> str:
        """Backend of layer ``index`` in a ``count``-layer network
        (single-layer networks: the last-layer override wins)."""
        if count < 1:
            raise DataflowError("layer count must be >= 1")
        if not 0 <= index < count:
            raise DataflowError(f"layer index {index} outside [0, {count})")
        if index == count - 1 and self.last is not None:
            return self.last
        if index == 0 and self.first is not None:
            return self.first
        return self.interior

    def layer_backends(self, count: int) -> tuple:
        return tuple(self.spec_for(index, count) for index in range(count))

    def describe(self) -> str:
        """``"tempus"`` for uniform profiles,
        ``"binary/tubgemm/binary"`` (first/interior/last) for mixed."""
        if self.is_uniform:
            return self.interior
        first = self.first or self.interior
        last = self.last or self.interior
        return f"{first}/{self.interior}/{last}"


def uniform_backend_profile(name) -> BackendProfile:
    key = check_backend(name)
    return BackendProfile(key, key)


def backend_profile(value) -> BackendProfile:
    """Resolve anything backend-shaped into a :class:`BackendProfile`.

    Accepts a profile, a :class:`ComputeBackend`, a registered name
    (``"tubgemm"``), or a mixed ``"first/interior/last"`` spec
    (``"binary/tubgemm/binary"``) — the form the CLI's ``--backend``
    flag takes.
    """
    if isinstance(value, BackendProfile):
        return value
    if isinstance(value, ComputeBackend):
        return uniform_backend_profile(value.name)
    if isinstance(value, str) and "/" in value:
        parts = [part.strip() for part in value.split("/")]
        if len(parts) != 3 or not all(parts):
            raise DataflowError(
                f"mixed backend spec {value!r} must be "
                "'first/interior/last' (e.g. 'binary/tubgemm/binary')"
            )
        first, interior, last = parts
        return BackendProfile(
            value.strip().lower(), interior, first=first, last=last
        )
    return uniform_backend_profile(value)


def resolve_stage_backends(net, engine=None) -> tuple:
    """Per-stage :class:`ComputeBackend` objects for a compiled network.

    Args:
        net: a :class:`~repro.runtime.lowering.CompiledNetwork`.
        engine: None (use the backends recorded at lowering, falling
            back to :data:`DEFAULT_BACKEND`) or anything
            :func:`backend_profile` accepts, overriding per position.
    """
    count = len(net.stages)
    if engine is None:
        return tuple(
            get_backend(getattr(stage, "backend", None) or DEFAULT_BACKEND)
            for stage in net.stages
        )
    profile = backend_profile(engine)
    return tuple(
        get_backend(profile.spec_for(index, count))
        for index in range(count)
    )
