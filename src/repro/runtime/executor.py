"""Shared batched execution engine for compiled networks.

:class:`BatchExecutor` is the single implementation of the vectorized
forward pass over a :class:`~repro.runtime.lowering.CompiledNetwork`:
seam adapters, PDP pools, per-group convolution, SDP requantization and
the analytic cycle accounting — per stage, on the stage's registered
compute backend (:mod:`repro.runtime.backends`).  Both the in-process
:class:`~repro.runtime.runner.NetworkRunner` and the worker processes of
:class:`~repro.serve.ShardedRunner` execute batches through this one
class, which is what makes the sharded serving path bit-identical (in
outputs *and* cycles) to single-process inference: there is exactly one
code path to agree with.

The executor is deliberately stateless beyond its compiled program, so
it can be constructed in a parent process and shipped to workers (the
compiled network pickles; with ``fork`` it is inherited copy-on-write
and the burst-map cache entries warmed during lowering come along for
free — see the cache notes in :mod:`repro.core.latency`).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.latency import burst_map_cache_stats
from repro.errors import DataflowError
from repro.nvdla.dataflow import golden_conv2d_batched
from repro.nvdla.pdp import Pdp
from repro.nvdla.pipeline import StageResult
from repro.nvdla.sdp import Sdp, _rounded_shift
from repro.runtime.backends import DEFAULT_BACKEND, ComputeBackend, \
    backend_profile, get_backend, resolve_stage_backends
from repro.runtime.lowering import CompiledNetwork, StagePlan

#: Bound on the fused-path cycle memo (entries are (stage index,
#: output-pixel count) pairs).  Large enough that a whole CNN program
#: plus a long decode's worth of distinct sequence lengths stay warm;
#: small enough that token-by-token serving can never grow executor
#: state linearly with stream length.
FUSED_CYCLE_MEMO_SIZE = 256


class _FusedStage:
    """Precomputed execution plan for one stage on the fused path.

    Built lazily on the first fused batch: the per-group weight tensors
    are stacked into one (G, Kg, Cg, R, S) block so a single grouped
    einsum per kernel-window position covers every group at once
    (depthwise layers collapse from C python-loop iterations to R*S),
    and the per-group schedule permutations are flattened into one
    gather index over the full channel/kernel axes.  Cycle accounting
    lives in a separate shape-aware memo on the executor
    (:meth:`BatchExecutor._stage_cycles`): per-image cycles depend on
    the *actual* output-pixel count, which grows per step under
    autoregressive decode, so baking one number per stage here would
    serve stale totals for dynamic shapes.
    """

    __slots__ = ("weights", "channel_gather", "kernel_restore")

    def __init__(self, stage: StagePlan) -> None:
        self.weights = np.stack(
            [np.asarray(tensor) for tensor in stage.weights]
        )
        groups, kernels_per_group, channels_per_group = \
            self.weights.shape[:3]
        self.channel_gather = _flat_permutation(
            (
                None if schedule is None else schedule.channel_order
                for schedule in stage.schedules
            ),
            groups,
            channels_per_group,
        )
        self.kernel_restore = _flat_permutation(
            stage.kernel_restores, groups, kernels_per_group
        )


def _flat_permutation(per_group, groups: int, width: int):
    """Fuse per-group index permutations into one gather over the flat
    (group-major) axis; ``None`` when every group is the identity."""
    orders = list(per_group)
    if all(order is None for order in orders):
        return None
    flat = np.empty(groups * width, dtype=np.intp)
    for group, order in enumerate(orders):
        base = group * width
        if order is None:
            flat[base : base + width] = np.arange(base, base + width)
        else:
            flat[base : base + width] = base + np.asarray(order)
    return flat


def fit_channels(
    tensor: np.ndarray, target: int, axis: int
) -> np.ndarray:
    """Tile or slice the channel axis to the declared input width
    (branch-seam adapter: concats/splits executed sequentially)."""
    have = tensor.shape[axis]
    if have == target:
        return tensor
    index = [slice(None)] * tensor.ndim
    if have > target:
        index[axis] = slice(0, target)
        return tensor[tuple(index)]
    repeats = -(-target // have)
    tiled = np.concatenate([tensor] * repeats, axis=axis)
    index[axis] = slice(0, target)
    return tiled[tuple(index)]


def fit_spatial(
    tensor: np.ndarray, target_hw: tuple, first_axis: int
) -> np.ndarray:
    """Corner-crop or zero-pad H/W to the declared input size."""
    for offset, target in enumerate(target_hw):
        axis = first_axis + offset
        have = tensor.shape[axis]
        if have > target:
            index = [slice(None)] * tensor.ndim
            index[axis] = slice(0, target)
            tensor = tensor[tuple(index)]
        elif have < target:
            pad = [(0, 0)] * tensor.ndim
            pad[axis] = (0, target - have)
            tensor = np.pad(tensor, pad, mode="constant")
    return tensor


class BatchExecutor:
    """Execute (B, C, H, W) batches through one compiled network.

    Args:
        net: the compiled program.
        engine: which compute backend(s) to account cycles on — None
            uses the per-stage backends recorded at lowering, a
            registered name (``"binary"``, ``"tempus"``, ``"tugemm"``,
            ``"tubgemm"``) runs every stage on that backend, and a
            :class:`~repro.runtime.backends.BackendProfile` (or
            ``"first/interior/last"`` spec) mixes backends per stage.
            Outputs are backend-independent (every backend computes the
            exact integer convolution); only cycle accounting differs.
        fused: run the fused hot path — im2col window extraction,
            grouped quantized matmul and SDP requantization in one
            vectorized pass per stage with reused scratch buffers and
            memoized cycle accounting.  Bit-identical (outputs and
            cycles) to the unfused path on every backend and precision;
            pinned by the randomized differential suite in
            ``tests/runtime/test_fused.py``.
    """

    def __init__(
        self,
        net: CompiledNetwork,
        engine: "str | None" = None,
        fused: bool = False,
    ) -> None:
        self.net = net
        self.fused = bool(fused)
        self.stage_backends: "tuple[ComputeBackend, ...]" = \
            resolve_stage_backends(net, engine)
        if engine is None:
            names = {backend.name for backend in self.stage_backends}
            self.engine = names.pop() if len(names) == 1 else "mixed"
        else:
            self.engine = backend_profile(engine).describe()
        # Fused-path state: per-stage plans (stacked weights, fused
        # permutations) and reusable scratch buffers, keyed by stage
        # index + role; both built lazily on first use.  Cycle totals
        # live in their own bounded LRU keyed (stage index, actual
        # output pixels): autoregressive decode presents a different
        # token count — hence a different output-pixel count — every
        # step, and an unbounded per-shape memo would grow linearly
        # with decoded tokens (the fixed-shape CNN assumption baked
        # into the old per-stage memo).
        self._fused_stages: "dict[int, _FusedStage]" = {}
        self._fused_cycles: "OrderedDict[tuple, int]" = OrderedDict()
        self._scratch: "dict[tuple, np.ndarray]" = {}

    # ------------------------------------------------------------------
    def run_batch(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, tuple, int]:
        """One vectorized forward pass.

        Args:
            images: validated (B, C, H, W) int64 batch.

        Returns:
            (output, stage_records, conv_cycles) — the stage records
            carry batch-total cycles, matching the
            :class:`~repro.runtime.runner.NetworkResult` contract.
        """
        records: list[StageResult] = []
        current = images
        total_cycles = 0
        # Folded-residual state: stage outputs a later stage adds to
        # its own requantized output (key -1 = the model input after
        # the first stage's seam adapters).  Outputs are fresh arrays
        # on both paths, so keeping references is safe across scratch
        # reuse.
        saved: dict[int, np.ndarray] = {}
        save_input = self.net.needs_input_saved
        for index, (stage, backend) in enumerate(
            zip(self.net.stages, self.stage_backends)
        ):
            current = self._fit_batch(stage, current, records)
            if index == 0 and save_input:
                saved[-1] = np.asarray(current, dtype=np.int64)
            residual = (
                saved[stage.residual_from]
                if stage.residual_from is not None
                else None
            )
            if self.fused:
                current, cycles = self._conv_fused(
                    index, stage, current, backend, residual
                )
            else:
                current, cycles = self._conv_batched(
                    stage, current, backend, residual
                )
            if stage.save_output:
                saved[index] = current
            cycles *= images.shape[0]
            total_cycles += cycles
            records.append(
                StageResult(
                    name=stage.name,
                    kind="conv",
                    output_shape=tuple(current.shape),
                    conv_cycles=cycles,
                )
            )
        return current, tuple(records), total_cycles

    def run_job(self, images: np.ndarray) -> dict:
        """Worker entry point: run a batch and report a self-contained
        record (output, cycles, per-stage cycles, cache delta) that can
        cross a process boundary."""
        before = burst_map_cache_stats()
        output, records, cycles = self.run_batch(images)
        after = burst_map_cache_stats()
        return {
            "output": output,
            "conv_cycles": cycles,
            "stage_cycles": tuple(
                record.conv_cycles for record in records
            ),
            "stage_meta": tuple(
                (record.name, record.kind, record.output_shape)
                for record in records
            ),
            "cache": {
                "hits": after["hits"] - before["hits"],
                "misses": after["misses"] - before["misses"],
                "disk_hits": (
                    after["disk_hits"] - before["disk_hits"]
                ),
                "disk_misses": (
                    after["disk_misses"] - before["disk_misses"]
                ),
                "disk_writes": (
                    after["disk_writes"] - before["disk_writes"]
                ),
            },
        }

    # --- seam adapters (batched) --------------------------------------
    def _fit_batch(
        self,
        stage: StagePlan,
        batch: np.ndarray,
        records: list,
    ) -> np.ndarray:
        batch = fit_channels(batch, stage.fit_channels, axis=1)
        if stage.pool is not None:
            batch = Pdp(stage.pool).apply_many(batch)
            records.append(
                StageResult(
                    name=f"{stage.name}.pool",
                    kind="pool",
                    output_shape=tuple(batch.shape),
                )
            )
        if stage.dynamic_hw:
            # Dynamic stages (linear ops) accept whatever token count
            # the stream presents; pinning to the nominal compile-time
            # length would truncate or zero-pad the sequence.
            return batch
        return fit_spatial(batch, stage.fit_hw, first_axis=2)

    # --- conv execution -----------------------------------------------
    def _conv_batched(
        self,
        stage: StagePlan,
        batch: np.ndarray,
        backend: ComputeBackend,
        residual: "np.ndarray | None" = None,
    ) -> tuple[np.ndarray, int]:
        """One conv stage over the whole batch; returns per-image
        cycles (the caller scales by batch size).  A folded residual is
        added to the requantized output after the SDP (see
        :meth:`_add_residual`)."""
        layer = stage.layer
        channels_per_group = layer.channels_per_group
        pad_h, pad_w = layer.padding_h, layer.padding_w
        padded = np.pad(
            batch,
            ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
            mode="constant",
        )
        outputs = []
        cycles = 0
        out_pixels: "int | None" = None
        for group, weights in enumerate(stage.weights):
            group_input = padded[
                :,
                group * channels_per_group : (group + 1)
                * channels_per_group,
            ]
            schedule = stage.schedules[group]
            if schedule is not None:
                group_input = group_input[:, schedule.channel_order]
            group_out = golden_conv2d_batched(
                group_input, weights, layer.stride, 0
            )
            if schedule is not None:
                group_out = group_out[:, stage.kernel_restores[group]]
            outputs.append(group_out)
            if stage.dynamic_hw and out_pixels is None:
                out_pixels = group_out.shape[-2] * group_out.shape[-1]
            cycles += self.group_cycles(
                stage, weights, backend, out_pixels=out_pixels
            )
        psums = (
            np.concatenate(outputs, axis=1)
            if len(outputs) > 1
            else outputs[0]
        )
        out = Sdp(stage.sdp).apply_many(psums)
        return self._add_residual(stage, out, residual), cycles

    # --- fused hot path -----------------------------------------------
    def _scratch_buf(self, key: tuple, shape: tuple) -> np.ndarray:
        """Reusable int64 scratch, reallocated only on shape change
        (e.g. a different batch size).  Fresh buffers are zeroed, so
        padded-input borders stay zero across reuses as long as only
        the interior is rewritten."""
        buffer = self._scratch.get(key)
        if buffer is None or buffer.shape != shape:
            buffer = np.zeros(shape, dtype=np.int64)
            self._scratch[key] = buffer
        return buffer

    def _fused_stage(self, index: int, stage: StagePlan) -> _FusedStage:
        plan = self._fused_stages.get(index)
        if plan is None:
            plan = _FusedStage(stage)
            self._fused_stages[index] = plan
        return plan

    def _stage_cycles(
        self,
        index: int,
        stage: StagePlan,
        backend: ComputeBackend,
        out_pixels: "int | None",
    ) -> int:
        """Memoized per-image cycles of one whole stage at one actual
        output-pixel count.  Bounded LRU (see
        :data:`FUSED_CYCLE_MEMO_SIZE`): growing-sequence decode streams
        present a new shape every token, and the memo must not grow
        with stream length."""
        key = (index, out_pixels)
        cached = self._fused_cycles.get(key)
        if cached is not None:
            self._fused_cycles.move_to_end(key)
            return cached
        cycles = sum(
            self.group_cycles(
                stage, weights, backend, out_pixels=out_pixels
            )
            for weights in stage.weights
        )
        self._fused_cycles[key] = cycles
        while len(self._fused_cycles) > FUSED_CYCLE_MEMO_SIZE:
            self._fused_cycles.popitem(last=False)
        return cycles

    def _add_residual(
        self,
        stage: StagePlan,
        outputs: np.ndarray,
        residual: "np.ndarray | None",
    ) -> np.ndarray:
        """Folded residual applied on the stage's requantized output —
        the SDP's elementwise-add unit, downstream of the scaling core.
        Both operands live in the activation format (a residual added
        to raw psums would be crushed by the requant scale), and the
        sum saturates back into the stage's output precision.  Exact
        integer arithmetic, so every execution path agrees bit-for-bit,
        and zero cycles — it rides the SDP pass like the bias add."""
        if residual is None:
            return outputs
        if residual.shape != outputs.shape:
            raise DataflowError(
                f"{stage.name}: folded residual shape "
                f"{residual.shape} does not match stage output "
                f"{outputs.shape}"
            )
        spec = stage.sdp.out_precision
        return np.clip(
            outputs + residual, spec.min_value, spec.max_value
        )

    def _conv_fused(
        self,
        index: int,
        stage: StagePlan,
        batch: np.ndarray,
        backend: ComputeBackend,
        residual: "np.ndarray | None" = None,
    ) -> tuple[np.ndarray, int]:
        """Fused equivalent of :meth:`_conv_batched` + SDP: one grouped
        einsum per kernel-window position over *all* groups at once,
        accumulating into a reused scratch tensor, with the SDP
        requantization applied in place on the accumulator.  Every
        operation is the same exact int64 arithmetic as the unfused
        path (integer addition is order-independent), so outputs and
        cycles are bit-identical — only the loop structure and
        allocation behavior differ."""
        plan = self._fused_stage(index, stage)
        layer = stage.layer
        stride = layer.stride
        pad_h, pad_w = layer.padding_h, layer.padding_w
        groups, kernels_per_group, channels_per_group, kernel_h, \
            kernel_w = plan.weights.shape
        batch_size, channels, height, width = batch.shape
        if pad_h or pad_w:
            padded = self._scratch_buf(
                ("pad", index),
                (batch_size, channels,
                 height + 2 * pad_h, width + 2 * pad_w),
            )
            padded[:, :, pad_h : pad_h + height,
                   pad_w : pad_w + width] = batch
        else:
            padded = np.asarray(batch, dtype=np.int64)
        if plan.channel_gather is not None:
            gathered = self._scratch_buf(
                ("gather", index), padded.shape
            )
            np.take(padded, plan.channel_gather, axis=1, out=gathered)
            padded = gathered
        grouped = padded.reshape(
            batch_size, groups, channels_per_group, *padded.shape[2:]
        )
        out_height = (padded.shape[2] - kernel_h) // stride + 1
        out_width = (padded.shape[3] - kernel_w) // stride + 1
        psums = self._scratch_buf(
            ("psum", index),
            (batch_size, groups, kernels_per_group,
             out_height, out_width),
        )
        partial = (
            self._scratch_buf(("partial", index), psums.shape)
            if kernel_h * kernel_w > 1
            else psums
        )
        position = 0
        for tap_y in range(kernel_h):
            for tap_x in range(kernel_w):
                window = grouped[
                    :,
                    :,
                    :,
                    tap_y : tap_y + stride * out_height : stride,
                    tap_x : tap_x + stride * out_width : stride,
                ]
                np.einsum(
                    "gkc,bgcyx->bgkyx",
                    plan.weights[:, :, :, tap_y, tap_x],
                    window,
                    out=psums if position == 0 else partial,
                )
                if position:
                    psums += partial
                position += 1
        values = psums.reshape(
            batch_size, groups * kernels_per_group,
            out_height, out_width,
        )
        if plan.kernel_restore is not None:
            values = np.take(values, plan.kernel_restore, axis=1)
        cycles = self._stage_cycles(
            index,
            stage,
            backend,
            out_height * out_width if stage.dynamic_hw else None,
        )
        out = self._sdp_fused(stage, values)
        return self._add_residual(stage, out, residual), cycles

    def _sdp_fused(
        self, stage: StagePlan, values: np.ndarray
    ) -> np.ndarray:
        """In-place SDP requantization on the (possibly scratch-backed)
        accumulator — op-for-op the integer arithmetic of
        :meth:`repro.nvdla.sdp.Sdp.apply_many`.  The returned array is
        always a fresh copy, so callers never alias scratch buffers
        that the next batch will overwrite."""
        config = stage.sdp
        if config.bias is not None:
            values += np.asarray(config.bias, dtype=np.int64)[
                None, :, None, None
            ]
        if config.activation == "relu":
            np.maximum(values, 0, out=values)
        elif config.activation == "prelu":
            negative = _rounded_shift(
                values * config.prelu_multiplier, config.prelu_shift
            )
            values = np.where(values >= 0, values, negative)
        values *= config.multiplier
        if config.shift:
            offset = 1 << (config.shift - 1)
            signs = np.sign(values)
            np.abs(values, out=values)
            values += offset
            values >>= config.shift
            values *= signs
        spec = config.out_precision
        return np.clip(values, spec.min_value, spec.max_value).astype(
            np.int64
        )

    def group_cycles(
        self,
        stage: StagePlan,
        weights: np.ndarray,
        backend: "ComputeBackend | None" = None,
        out_pixels: "int | None" = None,
    ) -> int:
        """Analytic per-image cycles of one layer group on the stage's
        backend — identical to the formula the backend's reference core
        uses (pinned by the equivalence tests).  Value-aware for
        temporal backends: cycles derive from the actual quantized
        weight magnitudes via the burst-map machinery, at the *stage*
        configuration, so each stage is accounted at its own precision
        (and backend) under mixed profiles."""
        if backend is None:
            # Identity lookup first, so an executor constructed with an
            # engine override accounts its own stages on that override.
            # (StagePlan equality compares tuples of ndarrays, so
            # index()/== would be unsafe here.)  Stage copies that are
            # not part of this program resolve like
            # resolve_stage_backends: the stage's recorded backend.
            backend = next(
                (
                    candidate
                    for plan, candidate in zip(
                        self.net.stages, self.stage_backends
                    )
                    if plan is stage
                ),
                None,
            )
            if backend is None:
                backend = get_backend(stage.backend or DEFAULT_BACKEND)
        return backend.layer_cycles(
            stage, weights, self.net.code, out_pixels=out_pixels
        )
