"""Shared batched execution engine for compiled networks.

:class:`BatchExecutor` is the single implementation of the vectorized
forward pass over a :class:`~repro.runtime.lowering.CompiledNetwork`:
seam adapters, PDP pools, per-group convolution, SDP requantization and
the analytic cycle accounting — per stage, on the stage's registered
compute backend (:mod:`repro.runtime.backends`).  Both the in-process
:class:`~repro.runtime.runner.NetworkRunner` and the worker processes of
:class:`~repro.serve.ShardedRunner` execute batches through this one
class, which is what makes the sharded serving path bit-identical (in
outputs *and* cycles) to single-process inference: there is exactly one
code path to agree with.

The executor is deliberately stateless beyond its compiled program, so
it can be constructed in a parent process and shipped to workers (the
compiled network pickles; with ``fork`` it is inherited copy-on-write
and the burst-map cache entries warmed during lowering come along for
free — see the cache notes in :mod:`repro.core.latency`).
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import burst_map_cache_stats
from repro.nvdla.dataflow import golden_conv2d_batched
from repro.nvdla.pdp import Pdp
from repro.nvdla.pipeline import StageResult
from repro.nvdla.sdp import Sdp
from repro.runtime.backends import DEFAULT_BACKEND, ComputeBackend, \
    backend_profile, get_backend, resolve_stage_backends
from repro.runtime.lowering import CompiledNetwork, StagePlan


def fit_channels(
    tensor: np.ndarray, target: int, axis: int
) -> np.ndarray:
    """Tile or slice the channel axis to the declared input width
    (branch-seam adapter: concats/splits executed sequentially)."""
    have = tensor.shape[axis]
    if have == target:
        return tensor
    index = [slice(None)] * tensor.ndim
    if have > target:
        index[axis] = slice(0, target)
        return tensor[tuple(index)]
    repeats = -(-target // have)
    tiled = np.concatenate([tensor] * repeats, axis=axis)
    index[axis] = slice(0, target)
    return tiled[tuple(index)]


def fit_spatial(
    tensor: np.ndarray, target_hw: tuple, first_axis: int
) -> np.ndarray:
    """Corner-crop or zero-pad H/W to the declared input size."""
    for offset, target in enumerate(target_hw):
        axis = first_axis + offset
        have = tensor.shape[axis]
        if have > target:
            index = [slice(None)] * tensor.ndim
            index[axis] = slice(0, target)
            tensor = tensor[tuple(index)]
        elif have < target:
            pad = [(0, 0)] * tensor.ndim
            pad[axis] = (0, target - have)
            tensor = np.pad(tensor, pad, mode="constant")
    return tensor


class BatchExecutor:
    """Execute (B, C, H, W) batches through one compiled network.

    Args:
        net: the compiled program.
        engine: which compute backend(s) to account cycles on — None
            uses the per-stage backends recorded at lowering, a
            registered name (``"binary"``, ``"tempus"``, ``"tugemm"``,
            ``"tubgemm"``) runs every stage on that backend, and a
            :class:`~repro.runtime.backends.BackendProfile` (or
            ``"first/interior/last"`` spec) mixes backends per stage.
            Outputs are backend-independent (every backend computes the
            exact integer convolution); only cycle accounting differs.
    """

    def __init__(
        self, net: CompiledNetwork, engine: "str | None" = None
    ) -> None:
        self.net = net
        self.stage_backends: "tuple[ComputeBackend, ...]" = \
            resolve_stage_backends(net, engine)
        if engine is None:
            names = {backend.name for backend in self.stage_backends}
            self.engine = names.pop() if len(names) == 1 else "mixed"
        else:
            self.engine = backend_profile(engine).describe()

    # ------------------------------------------------------------------
    def run_batch(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, tuple, int]:
        """One vectorized forward pass.

        Args:
            images: validated (B, C, H, W) int64 batch.

        Returns:
            (output, stage_records, conv_cycles) — the stage records
            carry batch-total cycles, matching the
            :class:`~repro.runtime.runner.NetworkResult` contract.
        """
        records: list[StageResult] = []
        current = images
        total_cycles = 0
        for stage, backend in zip(self.net.stages, self.stage_backends):
            current = self._fit_batch(stage, current, records)
            current, cycles = self._conv_batched(stage, current, backend)
            cycles *= images.shape[0]
            total_cycles += cycles
            records.append(
                StageResult(
                    name=stage.name,
                    kind="conv",
                    output_shape=tuple(current.shape),
                    conv_cycles=cycles,
                )
            )
        return current, tuple(records), total_cycles

    def run_job(self, images: np.ndarray) -> dict:
        """Worker entry point: run a batch and report a self-contained
        record (output, cycles, per-stage cycles, cache delta) that can
        cross a process boundary."""
        before = burst_map_cache_stats()
        output, records, cycles = self.run_batch(images)
        after = burst_map_cache_stats()
        return {
            "output": output,
            "conv_cycles": cycles,
            "stage_cycles": tuple(
                record.conv_cycles for record in records
            ),
            "stage_meta": tuple(
                (record.name, record.kind, record.output_shape)
                for record in records
            ),
            "cache": {
                "hits": after["hits"] - before["hits"],
                "misses": after["misses"] - before["misses"],
            },
        }

    # --- seam adapters (batched) --------------------------------------
    def _fit_batch(
        self,
        stage: StagePlan,
        batch: np.ndarray,
        records: list,
    ) -> np.ndarray:
        batch = fit_channels(batch, stage.fit_channels, axis=1)
        if stage.pool is not None:
            batch = Pdp(stage.pool).apply_many(batch)
            records.append(
                StageResult(
                    name=f"{stage.name}.pool",
                    kind="pool",
                    output_shape=tuple(batch.shape),
                )
            )
        return fit_spatial(batch, stage.fit_hw, first_axis=2)

    # --- conv execution -----------------------------------------------
    def _conv_batched(
        self, stage: StagePlan, batch: np.ndarray, backend: ComputeBackend
    ) -> tuple[np.ndarray, int]:
        """One conv stage over the whole batch; returns per-image
        cycles (the caller scales by batch size)."""
        layer = stage.layer
        channels_per_group = layer.channels_per_group
        pad_h, pad_w = layer.padding_h, layer.padding_w
        padded = np.pad(
            batch,
            ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
            mode="constant",
        )
        outputs = []
        cycles = 0
        for group, weights in enumerate(stage.weights):
            group_input = padded[
                :,
                group * channels_per_group : (group + 1)
                * channels_per_group,
            ]
            schedule = stage.schedules[group]
            if schedule is not None:
                group_input = group_input[:, schedule.channel_order]
            group_out = golden_conv2d_batched(
                group_input, weights, layer.stride, 0
            )
            if schedule is not None:
                group_out = group_out[:, stage.kernel_restores[group]]
            outputs.append(group_out)
            cycles += self.group_cycles(stage, weights, backend)
        psums = (
            np.concatenate(outputs, axis=1)
            if len(outputs) > 1
            else outputs[0]
        )
        return Sdp(stage.sdp).apply_many(psums), cycles

    def group_cycles(
        self,
        stage: StagePlan,
        weights: np.ndarray,
        backend: "ComputeBackend | None" = None,
    ) -> int:
        """Analytic per-image cycles of one layer group on the stage's
        backend — identical to the formula the backend's reference core
        uses (pinned by the equivalence tests).  Value-aware for
        temporal backends: cycles derive from the actual quantized
        weight magnitudes via the burst-map machinery, at the *stage*
        configuration, so each stage is accounted at its own precision
        (and backend) under mixed profiles."""
        if backend is None:
            # Identity lookup first, so an executor constructed with an
            # engine override accounts its own stages on that override.
            # (StagePlan equality compares tuples of ndarrays, so
            # index()/== would be unsafe here.)  Stage copies that are
            # not part of this program resolve like
            # resolve_stage_backends: the stage's recorded backend.
            backend = next(
                (
                    candidate
                    for plan, candidate in zip(
                        self.net.stages, self.stage_backends
                    )
                    if plan is stage
                ),
                None,
            )
            if backend is None:
                backend = get_backend(stage.backend or DEFAULT_BACKEND)
        return backend.layer_cycles(stage, weights, self.net.code)
