"""Batched multi-network inference on the simulated NVDLA pipeline.

:class:`NetworkRunner` executes any compiled ``models/zoo.py`` topology
end to end (conv -> SDP -> PDP) at batch size B.  Two execution paths
produce bit-identical outputs:

* :meth:`NetworkRunner.run` — the **vectorized** path: every layer runs
  once for the whole batch (one einsum pass per kernel-window position
  via :func:`~repro.nvdla.dataflow.golden_conv2d_batched`, batched SDP /
  PDP), with cycle accounting from the engines' analytic models — which
  the engine-equivalence tests pin to the tick/burst simulations.
* :meth:`NetworkRunner.run_per_image` — the **reference** path: each
  image flows through the real convolution cores
  (:class:`~repro.core.tempus_core.TempusCore` /
  :class:`~repro.nvdla.conv_core.ConvolutionCore`) one layer-group at a
  time, in any of their execution modes (``fast``/``burst``/``cycle``).

Both paths share the burst-map LRU in :mod:`repro.core.latency`: the
per-pixel burst map of every (layer, group) weight tensor is computed
once and then hits across batch items, engines and repeated runs — the
per-run hit/miss delta is reported on every :class:`NetworkResult`.

Tempus cycle counts depend only on the weights (a burst lasts as long
as its tile's largest magnitude), so when lowering applied burst-aware
tile scheduling the stored permuted tensors automatically yield the
*optimized* cycle counts while the channel/kernel reorders keep outputs
bit-identical to the unscheduled network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.latency import burst_map_cache_stats
from repro.errors import DataflowError
from repro.models.weights import load_quantized_model
from repro.nvdla.config import CoreConfig
from repro.nvdla.pdp import Pdp
from repro.nvdla.pipeline import StageResult
from repro.nvdla.sdp import Sdp
from repro.quant.profile import precision_profile
from repro.runtime.backends import DEFAULT_BACKEND, backend_profile, \
    get_backend
from repro.runtime.executor import BatchExecutor, fit_channels, \
    fit_spatial
from repro.runtime.lowering import CompiledNetwork, StagePlan, \
    lower_model
from repro.unary.encoding import UnaryCode
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class NetworkResult:
    """One batched forward pass through a compiled network.

    Attributes:
        model: zoo model name.
        engine: compute-backend name ("tempus", "binary", "tugemm",
            "tubgemm", ... — see :mod:`repro.runtime.backends`), or a
            "first/interior/last" spec for mixed-backend networks.
        batch_size: images in the batch.
        output: (B, K, OH, OW) integer logits tensor.
        stages: per-stage execution records (cycles cover the batch).
        conv_cycles: total conv-core cycles across the batch.
        macs: useful multiply-accumulates across the batch.
        cache: burst-map cache delta for this run
            ({"hits", "misses", "hit_rate"}).
    """

    model: str
    engine: str
    batch_size: int
    output: np.ndarray
    stages: tuple
    conv_cycles: int
    macs: int
    cache: dict

    @property
    def cycles_per_image(self) -> float:
        return self.conv_cycles / max(self.batch_size, 1)

    @property
    def images_per_million_cycles(self) -> float:
        from repro.eval.throughput import images_per_million_cycles

        return images_per_million_cycles(
            self.batch_size, self.conv_cycles
        )

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / max(self.conv_cycles, 1)


class NetworkRunner:
    """Compile-once, run-many batched inference over the model zoo."""

    def __init__(
        self,
        config: CoreConfig | None = None,
        engine: str = "tempus",
        scheduling: bool = True,
        scale: float = 1.0,
        input_size: int | None = None,
        code: UnaryCode | None = None,
        precision=None,
        fused: bool = False,
    ) -> None:
        """Args:
        config: MAC-array geometry/precision (defaults to 16x16 INT8).
        engine: compute backend — any registered name
            (:func:`repro.runtime.backends.registered_backends`), a
            "first/interior/last" mixed spec, or a
            :class:`~repro.runtime.backends.BackendProfile`.
        scheduling: apply burst-aware tile scheduling when lowering.
        scale: zoo width multiplier in (0, 1].
        input_size: rescaled input resolution (None = native).
        code: unary code for tempus latency (default 2s-unary).
        precision: a :class:`~repro.quant.profile.PrecisionProfile`,
            profile name ("int8"/"int4"/"int2"/"mixed"/...) or uniform
            format.  Defaults to uniform at ``config.precision``.
            When a profile is given, the array geometry is provisioned
            at the profile's widest member (``config`` supplies k/n).
        fused: run batches on the executor's fused hot path (one
            vectorized im2col + grouped matmul + SDP pass per stage
            with scratch reuse) — bit-identical in outputs and cycles
            to the default path; see
            :class:`~repro.runtime.executor.BatchExecutor`.
        """
        self.backend_profile = backend_profile(engine)
        self.config = config if config is not None else CoreConfig()
        if precision is None:
            self.profile = precision_profile(self.config.precision)
        else:
            self.profile = precision_profile(precision)
            if self.profile.widest.width != self.config.precision.width:
                self.config = self.config.with_precision(
                    self.profile.widest
                )
        self.engine = self.backend_profile.describe()
        self.scheduling = scheduling
        self.scale = scale
        self.input_size = input_size
        self.code = code
        self.fused = bool(fused)
        self._compiled: dict[str, CompiledNetwork] = {}
        self._executors: dict[str, BatchExecutor] = {}

    # ------------------------------------------------------------------
    def compile(self, model_name: str) -> CompiledNetwork:
        """Lower (and cache) one zoo model for this runner's geometry."""
        if model_name not in self._compiled:
            quantized = load_quantized_model(
                model_name,
                precision=self.profile,
                scale=self.scale,
            )
            self._compiled[model_name] = lower_model(
                quantized,
                self.config,
                input_size=self.input_size,
                scheduling=self.scheduling,
                code=self.code,
                backend=self.backend_profile,
            )
        return self._compiled[model_name]

    def executor(self, model_name: str) -> BatchExecutor:
        """The (cached) batched executor for one compiled model — the
        same object the sharded serving workers run, which is what pins
        the two paths bit-identical."""
        if model_name not in self._executors:
            # engine=None: account on the per-stage backends recorded
            # at lowering (this runner's backend profile).
            self._executors[model_name] = BatchExecutor(
                self.compile(model_name), None, fused=self.fused
            )
        return self._executors[model_name]

    def synthesize_batch(
        self, model_name: str, batch_size: int
    ) -> np.ndarray:
        """Deterministic (B, C, H, W) input batch for a model."""
        net = self.compile(model_name)
        if batch_size < 1:
            raise DataflowError("batch size must be >= 1")
        rng = make_rng("runtime", net.name, "input", int(batch_size))
        images = net.precision.random_array(
            rng, (int(batch_size),) + tuple(net.input_shape)
        )
        return np.asarray(images, dtype=np.int64)

    # ------------------------------------------------------------------
    def run(
        self, model_name: str, batch: "int | np.ndarray"
    ) -> NetworkResult:
        """Run a whole batch through the network, vectorized per layer.

        Args:
            model_name: zoo model name.
            batch: a (B, C, H, W) integer tensor, a single (C, H, W)
                image, or an int B requesting a synthesized batch.
        """
        net = self.compile(model_name)
        images = self._as_batch(net, model_name, batch)
        before = burst_map_cache_stats()
        output, records, total_cycles = self.executor(
            model_name
        ).run_batch(images)
        return NetworkResult(
            model=net.name,
            engine=self.engine,
            batch_size=images.shape[0],
            output=output,
            stages=records,
            conv_cycles=total_cycles,
            macs=net.macs_per_image * images.shape[0],
            cache=self._cache_delta(before),
        )

    def run_per_image(
        self,
        model_name: str,
        batch: "int | np.ndarray",
        mode: str = "fast",
    ) -> NetworkResult:
        """Reference path: loop images through each stage backend's
        real core (conv cores for tempus/binary, the actual GemmEngine
        via im2col for tugemm/tubgemm).

        Args:
            mode: core execution mode — "fast" (analytic), "burst"
                (vectorized burst-level simulation) or "cycle"
                (tick-level; very slow, tiny models only).  The gemm
                backends have no simulation modes and accept only
                "fast".

        Stage records carry per-image output shapes (this path runs one
        image at a time) but batch-total cycles, matching :meth:`run`.
        """
        net = self.compile(model_name)
        images = self._as_batch(net, model_name, batch)
        cores = self._stage_cores(net, mode)
        before = burst_map_cache_stats()
        outputs = []
        first_records: list[StageResult] = []
        cycle_totals: list[int] = []
        total_cycles = 0
        for index in range(images.shape[0]):
            current = images[index]
            image_records: list[StageResult] = []
            # Folded-residual state, mirroring BatchExecutor.run_batch
            # (key -1 = the model input after the first stage's seam
            # adapters).
            saved: dict[int, np.ndarray] = {}
            for stage_index, stage in enumerate(net.stages):
                current = self._fit_single(stage, current, image_records)
                if stage_index == 0 and net.needs_input_saved:
                    saved[-1] = np.asarray(current, dtype=np.int64)
                residual = (
                    saved[stage.residual_from]
                    if stage.residual_from is not None
                    else None
                )
                key = (
                    stage.backend or DEFAULT_BACKEND,
                    stage.precision.width,
                )
                current, cycles = self._conv_single(
                    stage, current, cores[key], residual
                )
                if stage.save_output:
                    saved[stage_index] = current
                total_cycles += cycles
                image_records.append(
                    StageResult(
                        name=stage.name,
                        kind="conv",
                        output_shape=tuple(current.shape),
                        conv_cycles=cycles,
                    )
                )
            outputs.append(current)
            # Every image walks the same stage/adapter sequence, so the
            # records align by position; accumulate cycles so the
            # stages carry batch totals (the NetworkResult contract),
            # while shapes stay per-image (this is the per-image path).
            if index == 0:
                first_records = image_records
                cycle_totals = [
                    record.conv_cycles for record in image_records
                ]
            else:
                for position, record in enumerate(image_records):
                    cycle_totals[position] += record.conv_cycles
        records = [
            StageResult(
                name=record.name,
                kind=record.kind,
                output_shape=record.output_shape,
                conv_cycles=total,
            )
            for record, total in zip(first_records, cycle_totals)
        ]
        return NetworkResult(
            model=net.name,
            engine=self.engine,
            batch_size=images.shape[0],
            output=np.stack(outputs),
            stages=tuple(records),
            conv_cycles=total_cycles,
            macs=net.macs_per_image * images.shape[0],
            cache=self._cache_delta(before),
        )

    # ------------------------------------------------------------------
    def _stage_cores(self, net: CompiledNetwork, mode: str) -> dict:
        """One reference core per distinct (backend, stage precision)
        — mixed profiles run every stage through its own backend's
        core, configured at that stage's format."""
        cores: dict = {}
        for stage in net.stages:
            # Pre-registry programs may carry backend=None; fall back
            # exactly like the batched path's resolve_stage_backends.
            name = stage.backend or DEFAULT_BACKEND
            key = (name, stage.precision.width)
            if key not in cores:
                cores[key] = get_backend(name).make_core(
                    stage.config, net.code, mode
                )
        return cores

    def _as_batch(
        self,
        net: CompiledNetwork,
        model_name: str,
        batch: "int | np.ndarray",
    ) -> np.ndarray:
        if isinstance(batch, (int, np.integer)):
            return self.synthesize_batch(model_name, int(batch))
        images = np.asarray(batch)
        if images.ndim == 3:
            images = images[None]
        expected = tuple(net.input_shape)
        matches = (
            images.ndim == 4 and tuple(images.shape[1:]) == expected
        )
        if not matches and images.ndim == 4 and net.dynamic_tokens:
            # Dynamic-token programs accept any sequence length on the
            # token (height) axis — autoregressive decode grows it per
            # step; channels and width stay structural.
            channels, _, width = expected
            matches = (
                images.shape[1] == channels
                and images.shape[2] >= 1
                and images.shape[3] == width
            )
        if not matches:
            raise DataflowError(
                f"batch shape {images.shape} does not match "
                f"(B,) + {expected}"
            )
        return net.precision.check_array(images)

    def _cache_delta(self, before: dict) -> dict:
        after = burst_map_cache_stats()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
            "disk_hits": after["disk_hits"] - before["disk_hits"],
            "disk_misses": (
                after["disk_misses"] - before["disk_misses"]
            ),
            "disk_writes": (
                after["disk_writes"] - before["disk_writes"]
            ),
        }

    # --- seam adapters (per-image) ------------------------------------
    def _fit_single(
        self,
        stage: StagePlan,
        image: np.ndarray,
        records: list,
    ) -> np.ndarray:
        image = fit_channels(image, stage.fit_channels, axis=0)
        if stage.pool is not None:
            image = Pdp(stage.pool).apply(image)
            records.append(
                StageResult(
                    name=f"{stage.name}.pool",
                    kind="pool",
                    output_shape=tuple(image.shape),
                )
            )
        if stage.dynamic_hw:
            return image
        return fit_spatial(image, stage.fit_hw, first_axis=1)

    # --- conv execution (per-image reference) -------------------------
    def _conv_single(
        self,
        stage: StagePlan,
        image: np.ndarray,
        core,
        residual: "np.ndarray | None" = None,
    ) -> tuple[np.ndarray, int]:
        """One conv stage for one image through a real conv core."""
        layer = stage.layer
        channels_per_group = layer.channels_per_group
        pad_h, pad_w = layer.padding_h, layer.padding_w
        padded = np.pad(
            image,
            ((0, 0), (pad_h, pad_h), (pad_w, pad_w)),
            mode="constant",
        )
        outputs = []
        cycles = 0
        for group, weights in enumerate(stage.weights):
            group_input = padded[
                group * channels_per_group : (group + 1)
                * channels_per_group
            ]
            schedule = stage.schedules[group]
            if schedule is not None:
                group_input = group_input[schedule.channel_order]
            result = core.run_layer(
                group_input, weights, stride=layer.stride, padding=0
            )
            group_out = result.output
            if schedule is not None:
                group_out = group_out[stage.kernel_restores[group]]
            outputs.append(group_out)
            cycles += result.cycles
        psums = (
            np.concatenate(outputs, axis=0)
            if len(outputs) > 1
            else outputs[0]
        )
        out = Sdp(stage.sdp).apply(psums)
        if residual is not None:
            # SDP elementwise-add unit: the residual joins the stage's
            # requantized output and saturates in the output format —
            # mirroring BatchExecutor._add_residual bit-for-bit.
            if residual.shape != out.shape:
                raise DataflowError(
                    f"{stage.name}: folded residual shape "
                    f"{residual.shape} does not match stage output "
                    f"{out.shape}"
                )
            spec = stage.sdp.out_precision
            out = np.clip(
                out + residual, spec.min_value, spec.max_value
            )
        return out, cycles
