"""Declarative sweeps + design-space autotuning.

* :mod:`repro.tune.spec` — a sweep is data: nets x backends x
  precisions x :class:`~repro.nvdla.config.CoreConfig` geometries,
  validated up front, plus the named-sweep registry.
* :mod:`repro.tune.harness` — the one generic execution engine behind
  every benchmark driver (runner caching, timing protocol, energy
  records, artifact writing).
* :mod:`repro.tune.autotune` — Pareto search over the design space
  against a cycles/energy SLO (``python -m repro tune``).
"""

from repro.tune.autotune import (
    OBJECTIVES,
    Slo,
    dominates,
    pareto_frontier,
    render_pareto_tune,
    run_pareto_tune,
)
from repro.tune.harness import (
    FULL_PRESET,
    QUICK_PRESET,
    SweepHarness,
    engine_record,
    energy_record,
    measure,
    preset,
    write_benchmark_artifact,
)
from repro.tune.spec import (
    SweepPoint,
    SweepSpec,
    describe_geometry,
    get_sweep,
    parse_geometry,
    register_sweep,
    registered_sweeps,
)

__all__ = [
    "OBJECTIVES",
    "Slo",
    "dominates",
    "pareto_frontier",
    "render_pareto_tune",
    "run_pareto_tune",
    "FULL_PRESET",
    "QUICK_PRESET",
    "SweepHarness",
    "engine_record",
    "energy_record",
    "measure",
    "preset",
    "write_benchmark_artifact",
    "SweepPoint",
    "SweepSpec",
    "describe_geometry",
    "get_sweep",
    "parse_geometry",
    "register_sweep",
    "registered_sweeps",
]
