"""Design-space autotuner: Pareto search over backend x precision x
array geometry.

Given one network and an optional SLO (a cycles-per-image and/or
pJ-per-image budget), the tuner evaluates every assignment in a
:class:`~repro.tune.spec.SweepSpec` grid through the generic
:class:`~repro.tune.harness.SweepHarness` — simulated cycles from the
runtime, per-image energy from the deployed-array power model
(:mod:`repro.profiling.energy`), silicon area from
:mod:`repro.hw.synthesis` — prunes dominated points, and writes the
three-objective Pareto frontier (cycles vs pJ/image vs mm^2) to
``results/BENCH_pareto.json``.

Area accounting matches the energy model's deployment story: the
silicon is provisioned at :data:`~repro.profiling.energy
.DEPLOYED_WIDTH` (INT8) regardless of the profile served, and a mixed
backend profile deploys every array it names (binary + tub), paying
for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.core.hwmodel import tub_array_netlist
from repro.errors import DataflowError
from repro.hw.synthesis import SynthesisResult, synthesize
from repro.nvdla.hwmodel import binary_array_netlist
from repro.profiling.energy import DEFAULT_CLOCK_MHZ, DEPLOYED_WIDTH
from repro.tune.harness import SweepHarness, write_benchmark_artifact
from repro.tune.spec import (
    DEFAULT_TUNE_BACKENDS,
    DEFAULT_TUNE_GEOMETRIES,
    DEFAULT_TUNE_PRECISIONS,
    SweepSpec,
    describe_geometry,
)
from repro.utils.intrange import int_spec

#: The tuner's objectives, all minimized.
OBJECTIVES = ("cycles_per_image", "pj_per_image", "area_mm2")


@dataclass(frozen=True)
class Slo:
    """A serving-level objective: per-image budgets a design must meet.

    ``None`` budgets are unconstrained; an all-``None`` SLO admits
    every design (the tuner then reports the unconstrained frontier).
    """

    max_cycles_per_image: "float | None" = None
    max_pj_per_image: "float | None" = None

    def __post_init__(self) -> None:
        for name in ("max_cycles_per_image", "max_pj_per_image"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise DataflowError(f"{name} must be positive")

    @property
    def constrained(self) -> bool:
        return (
            self.max_cycles_per_image is not None
            or self.max_pj_per_image is not None
        )

    def admits(
        self, cycles_per_image: float, pj_per_image: float
    ) -> bool:
        if (
            self.max_cycles_per_image is not None
            and cycles_per_image > self.max_cycles_per_image
        ):
            return False
        if (
            self.max_pj_per_image is not None
            and pj_per_image > self.max_pj_per_image
        ):
            return False
        return True

    def as_dict(self) -> dict:
        return {
            "max_cycles_per_image": self.max_cycles_per_image,
            "max_pj_per_image": self.max_pj_per_image,
        }


@lru_cache(maxsize=64)
def array_report(
    array: str,
    k: int,
    n: int,
    width: int = DEPLOYED_WIDTH,
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
) -> SynthesisResult:
    """Synthesis report of one deployed k x n array (cached —
    synthesis is deterministic)."""
    precision = int_spec(width)
    if array == "binary":
        netlist = binary_array_netlist(k, n, precision)
    elif array == "tub":
        netlist = tub_array_netlist(k, n, precision)
    else:
        raise DataflowError(
            f"unknown array {array!r} (expected 'binary' or 'tub')"
        )
    return synthesize(netlist, clock_mhz=clock_mhz)


def design_area_mm2(
    arrays: "tuple[str, ...]", k: int, n: int
) -> float:
    """Total silicon of one assignment: every deployed array's area."""
    return sum(
        array_report(array, k, n).area_mm2 for array in sorted(arrays)
    )


def dominates(a: dict, b: dict) -> bool:
    """True iff ``a`` is no worse than ``b`` on every objective and
    strictly better on at least one."""
    return all(
        a[objective] <= b[objective] for objective in OBJECTIVES
    ) and any(a[objective] < b[objective] for objective in OBJECTIVES)


def pareto_frontier(points: "list[dict]") -> "list[dict]":
    """Non-dominated points, deduplicated by objective vector and
    sorted fastest-first.

    Deduplication matters because distinct assignments can share an
    objective vector exactly (binary cycle cost is
    precision-independent, so binary int8/int4 points tie on all three
    axes); the frontier keeps the first spelling of each vector.
    """
    frontier = []
    seen = set()
    for point in points:
        if any(
            dominates(other, point)
            for other in points
            if other is not point
        ):
            continue
        vector = tuple(point[objective] for objective in OBJECTIVES)
        if vector in seen:
            continue
        seen.add(vector)
        frontier.append(point)
    return sorted(
        frontier,
        key=lambda point: tuple(
            point[objective] for objective in OBJECTIVES
        ),
    )


def evaluate_point(harness: SweepHarness, point, slo: Slo) -> dict:
    """Score one design-space assignment on the three objectives."""
    runner = harness.runner(
        point.backend, point.precision, point.geometry
    )
    result = runner.run(point.net, harness.spec.batch)
    record = harness.point_record(runner, point, result)
    energy = record["energy"]
    arrays = tuple(sorted(energy["array_power_mw"]))
    k, n = point.geometry
    cycles_per_image = float(result.cycles_per_image)
    pj_per_image = float(energy["pj_per_image"])
    reports = {array: array_report(array, k, n) for array in arrays}
    return {
        "net": point.net,
        "backend": point.backend,
        "precision": point.precision,
        "geometry": {"k": k, "n": n},
        "label": (
            f"{point.backend}/{point.precision}/"
            f"{describe_geometry(point.geometry)}"
        ),
        "cycles": int(result.conv_cycles),
        "cycles_per_image": cycles_per_image,
        "pj_per_image": pj_per_image,
        "area_mm2": float(
            sum(report.area_mm2 for report in reports.values())
        ),
        "arrays": list(arrays),
        "array_power_mw": energy["array_power_mw"],
        "meets_timing": bool(
            all(report.meets_timing for report in reports.values())
        ),
        "meets_slo": bool(
            slo.admits(cycles_per_image, pj_per_image)
        ),
    }


def run_pareto_tune(
    net: str = "mobilenet_v2",
    backends: "tuple[str, ...] | list[str]" = DEFAULT_TUNE_BACKENDS,
    precisions: "tuple | list" = DEFAULT_TUNE_PRECISIONS,
    geometries: "tuple | list" = DEFAULT_TUNE_GEOMETRIES,
    slo: "Slo | None" = None,
    batch: int = 1,
    quick: bool = False,
    scheduling: bool = True,
    out_dir: "str | Path | None" = "results",
) -> dict:
    """Search the backend x precision x geometry grid for one net and
    emit the Pareto frontier (``results/BENCH_pareto.json``).

    Every grid assignment is evaluated through the generic sweep
    harness (simulated cycles + deployed-array energy), priced in
    silicon area via :mod:`repro.hw.synthesis`, filtered against the
    SLO, and dominated designs are pruned.  An SLO no grid point can
    meet raises :class:`DataflowError` naming the tightest achievable
    budgets.

    Args:
        net: zoo model name to tune for.
        backends: backend names / mixed profiles to consider.
        precisions: precision profiles to consider.
        geometries: array shapes to consider ("KxN" or (k, n)).
        slo: per-image budgets (None = unconstrained frontier).
        batch: images per evaluation run.
        quick: smaller width/resolution preset for smoke runs.
        scheduling: apply burst-aware tile scheduling when lowering.
        out_dir: where BENCH_pareto.json is written (None = don't).

    Returns:
        the record written to the artifact.
    """
    slo = slo if slo is not None else Slo()
    spec = SweepSpec(
        name=f"tune:{net}",
        nets=(net,),
        backends=tuple(backends),
        precisions=tuple(precisions),
        geometries=tuple(geometries),
        batch=batch,
        quick=quick,
        scheduling=scheduling,
    )
    harness = SweepHarness(spec)

    points = [
        evaluate_point(harness, point, slo) for point in spec.points()
    ]
    feasible = [point for point in points if point["meets_slo"]]
    if not feasible:
        best_cycles = min(
            point["cycles_per_image"] for point in points
        )
        best_pj = min(point["pj_per_image"] for point in points)
        raise DataflowError(
            f"no design meets the SLO {slo.as_dict()}; tightest "
            f"achievable: cycles_per_image {best_cycles:.1f}, "
            f"pj_per_image {best_pj:.1f}"
        )
    frontier = pareto_frontier(feasible)

    payload = {
        "benchmark": "pareto_tune",
        "net": net,
        **harness.common_head(),
        "batch": spec.batch,
        "slo": slo.as_dict(),
        "axes": spec.axes(),
        "deployed_precision": int_spec(DEPLOYED_WIDTH).name,
        "clock_mhz": DEFAULT_CLOCK_MHZ,
        "objectives": list(OBJECTIVES),
        "explored": len(points),
        "feasible": len(feasible),
        "points": points,
        "frontier": frontier,
    }
    return write_benchmark_artifact(
        payload, "BENCH_pareto.json", out_dir
    )


def render_pareto_tune(payload: dict) -> str:
    """Human-readable summary of an autotuner payload."""
    from repro.utils.tables import Column, render_columns, yes_no

    columns = [
        Column("backend", "backend"),
        Column("precision", "precision"),
        Column(
            "geometry",
            lambda row: (
                f"{row['geometry']['k']}x{row['geometry']['n']}"
            ),
        ),
        Column("cycles/image", "cycles_per_image", format=",.1f"),
        Column("pJ/image", "pj_per_image", format=",.0f"),
        Column("mm^2", "area_mm2", format=".4f"),
        Column("arrays", lambda row: "+".join(row["arrays"])),
        Column(
            "timing", lambda row: yes_no(row["meets_timing"])
        ),
    ]
    slo = payload["slo"]
    budgets = ", ".join(
        f"{name}<={value:g}"
        for name, value in slo.items()
        if value is not None
    )
    title = (
        f"design-space Pareto frontier for {payload['net']} "
        f"({payload['explored']} assignments explored, "
        f"{payload['feasible']} feasible, "
        f"{len(payload['frontier'])} on frontier; "
        f"SLO: {budgets or 'unconstrained'})"
    )
    return render_columns(payload["frontier"], columns, title=title)
