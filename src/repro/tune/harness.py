"""Generic sweep-execution harness.

One engine behind every benchmark driver: the harness owns the
width/resolution presets, runner construction (cached per
backend/precision/geometry/scheduling), the warm-then-measure timing
protocol, the schema-conformant engine/energy records, and artifact
writing.  Drivers (:mod:`repro.runtime.bench`) reduce to spec-builders
plus their claim-specific verification logic, and the design-space
autotuner (:mod:`repro.tune.autotune`) scores harness-evaluated points
against an SLO.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.errors import DataflowError
from repro.eval.throughput import images_per_million_cycles, \
    requests_per_second
from repro.nvdla.config import CoreConfig
from repro.profiling.energy import network_energy
from repro.quant.profile import precision_profile
from repro.runtime.backends import backend_profile, \
    resolve_stage_backends
from repro.runtime.runner import NetworkRunner
from repro.tune.spec import SweepPoint, SweepSpec

#: (scale, input_size) presets: full keeps enough resolution for the
#: per-layer cycle structure to matter; quick is a CI-speed smoke.
FULL_PRESET = (0.25, 64)
QUICK_PRESET = (0.125, 32)


def preset(quick: bool) -> "tuple[float, int]":
    """The (scale, input_size) preset for a sweep."""
    return QUICK_PRESET if quick else FULL_PRESET


def measure(fn, repeats: int = 1) -> tuple:
    """Run ``fn`` ``repeats`` times; return (last result, best seconds).

    Best-of-N wall clock is the standard way to suppress scheduler
    noise when the quantity of interest is achievable throughput.
    """
    if repeats < 1:
        raise DataflowError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def engine_record(
    result,
    seconds: "float | None" = None,
    energy: "dict | None" = None,
) -> dict:
    """The per-run record every benchmark payload carries."""
    record = {
        "conv_cycles": int(result.conv_cycles),
        "cycles_per_image": float(result.cycles_per_image),
        "images_per_million_cycles": float(
            images_per_million_cycles(
                result.batch_size, result.conv_cycles
            )
        ),
        "macs_per_cycle": float(result.macs_per_cycle),
        "cache": {
            "hits": int(result.cache["hits"]),
            "misses": int(result.cache["misses"]),
            "hit_rate": float(result.cache["hit_rate"]),
        },
    }
    if energy is not None:
        record["energy"] = energy
    if seconds is not None:
        record["wall_seconds"] = float(seconds)
        record["host_images_per_second"] = float(
            requests_per_second(result.batch_size, seconds)
        )
    return record


def energy_record(runner, model_name: str, result) -> dict:
    """Per-image energy of one benchmark run.

    Accounts every conv stage at its own backend's deployed-array
    power (:func:`repro.profiling.energy.network_energy`), so mixed
    backend profiles sum correctly; uniform profiles reduce to
    ``power x cycles x T_clk``.
    """
    net = runner.compile(model_name)
    backends = resolve_stage_backends(net)
    conv_records = [
        record for record in result.stages if record.kind == "conv"
    ]
    batch = max(result.batch_size, 1)
    total_pj = 0.0
    arrays: dict = {}
    clock_mhz = None
    deployed = None
    for record, backend in zip(conv_records, backends):
        stage_energy = network_energy(
            backend.array, record.conv_cycles / batch, runner.config
        )
        total_pj += stage_energy["pj_per_image"]
        arrays[backend.array] = stage_energy["power_mw"]
        clock_mhz = stage_energy["clock_mhz"]
        deployed = stage_energy["deployed_precision"]
    return {
        "pj_per_image": total_pj,
        "array_power_mw": arrays,
        "deployed_precision": deployed,
        "clock_mhz": clock_mhz,
    }


def write_benchmark_artifact(
    payload: dict,
    filename: str,
    out_dir: "str | Path | None",
) -> dict:
    """Write a payload under ``out_dir`` (None = don't) and stamp the
    artifact path on it — the shared tail of every driver."""
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        artifact = out_path / filename
        artifact.write_text(json.dumps(payload, indent=2) + "\n")
        payload["artifact"] = str(artifact)
    return payload


class SweepHarness:
    """Executes the points of one :class:`SweepSpec`.

    Runners are cached per (backend, precision, geometry, scheduling),
    so a sweep re-lowering the same assignment for several nets pays
    compilation once, and the warm-then-measure protocol keeps wall
    clock comparable across drivers.
    """

    def __init__(
        self,
        spec: SweepSpec,
        config: "CoreConfig | None" = None,
    ) -> None:
        self.spec = spec
        self.base_config = config if config is not None else CoreConfig()
        self.scale, self.input_size = preset(spec.quick)
        self._runners: dict = {}

    def config_for(
        self, geometry: "tuple[int, int] | None" = None
    ) -> CoreConfig:
        """The base config at one geometry (latency knobs carried
        over)."""
        if geometry is None:
            return self.base_config
        return SweepPoint(
            net=self.spec.nets[0],
            backend=self.spec.backends[0],
            precision=self.spec.precisions[0],
            geometry=geometry,
        ).config(self.base_config)

    def runner(
        self,
        backend,
        precision,
        geometry: "tuple[int, int] | None" = None,
        scheduling: "bool | None" = None,
    ) -> NetworkRunner:
        """The cached runner for one design-space assignment."""
        engine = backend_profile(backend).describe()
        profile = precision_profile(precision)
        scheduling = (
            self.spec.scheduling if scheduling is None else scheduling
        )
        key = (
            engine,
            profile.name,
            tuple(geometry) if geometry is not None else None,
            bool(scheduling),
        )
        if key not in self._runners:
            self._runners[key] = NetworkRunner(
                self.config_for(geometry),
                engine=engine,
                scheduling=scheduling,
                scale=self.scale,
                input_size=self.input_size,
                precision=profile,
            )
        return self._runners[key]

    def measure_point(
        self,
        point: SweepPoint,
        batch: "int | None" = None,
        repeats: int = 1,
        warm: bool = True,
    ) -> tuple:
        """Run one point: warm the runner (compile + burst maps), then
        time ``batch`` images best-of-``repeats``.

        Returns ``(runner, result, seconds)``.
        """
        runner = self.runner(
            point.backend, point.precision, point.geometry
        )
        if warm:
            runner.run(point.net, 1)
        batch = self.spec.batch if batch is None else batch
        result, seconds = measure(
            lambda: runner.run(point.net, batch), repeats
        )
        return runner, result, seconds

    def point_record(
        self,
        runner,
        point: SweepPoint,
        result,
        seconds: "float | None" = None,
    ) -> dict:
        """Engine record + per-image energy for one evaluated point."""
        return engine_record(
            result, seconds, energy_record(runner, point.net, result)
        )

    def common_head(self) -> dict:
        """The preset fields every payload carries."""
        return {
            "quick": bool(self.spec.quick),
            "scheduling": bool(self.spec.scheduling),
            "scale": self.scale,
            "input_size": self.input_size,
        }
