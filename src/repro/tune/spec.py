"""Declarative sweep specifications: a sweep is data.

A :class:`SweepSpec` names the axes of a benchmark sweep — nets x
compute backends x precision profiles x array geometries (plus the
serving drivers' worker counts) — and validates/canonicalizes every
axis up front, so nonsense (unknown models, bogus backend names,
``0x16`` geometries) is rejected before any work runs.  The cartesian
product of the axes is the sweep's :class:`SweepPoint` stream.

Specs are plain frozen data: the generic execution engine lives in
:class:`repro.tune.harness.SweepHarness`, and the design-space
autotuner (:mod:`repro.tune.autotune`) is just a spec whose points are
scored against an SLO.  Named specs registered here are what
``python -m repro list`` enumerates next to the paper experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.errors import DataflowError
from repro.models.zoo import EXTENSION_MODELS, MODEL_NAMES
from repro.nvdla.config import CoreConfig
from repro.quant.profile import precision_profile
from repro.runtime.backends import backend_profile

#: The array size most of the paper's evaluation uses.
DEFAULT_GEOMETRY = (16, 16)

#: Default benchmark workload: the two Table-I models with the most
#: dissimilar structure (depthwise-heavy vs dense-residual).
DEFAULT_MODELS = ("mobilenet_v2", "resnet18")

#: Serving benchmark default workload (>= 3 nets, per the artifact
#: contract) and worker sweep.
DEFAULT_SERVING_MODELS = ("mobilenet_v2", "resnet18", "shufflenet_v2")
DEFAULT_WORKER_COUNTS = (1, 2, 4)

#: Precision-sweep default: the three uniform paper precisions plus the
#: standard mixed edge recipe.
DEFAULT_PRECISION_SWEEP = ("int8", "int4", "int2", "mixed")

#: Backend-sweep defaults: all four registered MAC-unit designs at the
#: paper's three uniform precisions.
DEFAULT_BACKEND_SWEEP = ("binary", "tempus", "tugemm", "tubgemm")
DEFAULT_BACKEND_PRECISIONS = ("int8", "int4", "int2")

#: Autotuner default grid: both pure arrays, the hybrid-encoding gemm
#: core, and a mixed first/last-on-binary deployment, across the
#: paper's precisions and the geometries its evaluation names
#: (nv_small's 8x8, the P&R case study's 16x4, the 16x16 workhorse and
#: a scaled-up 32x32).
DEFAULT_TUNE_BACKENDS = (
    "binary",
    "tempus",
    "tubgemm",
    "binary/tubgemm/binary",
)
DEFAULT_TUNE_PRECISIONS = ("int8", "int4", "mixed")
DEFAULT_TUNE_GEOMETRIES = ("8x8", "16x4", "16x16", "32x32")


def check_models(models) -> None:
    """Reject model names the zoo doesn't know (Table-I CNNs and the
    extension models alike)."""
    known = MODEL_NAMES + EXTENSION_MODELS
    unknown = [name for name in models if name not in known]
    if unknown:
        raise DataflowError(
            f"unknown model(s) {', '.join(unknown)}; available: "
            f"{', '.join(known)}"
        )


def parse_geometry(value) -> "tuple[int, int]":
    """Parse an array geometry into a validated ``(k, n)`` pair.

    Accepts ``"16x16"`` strings, ``(k, n)`` pairs, and
    :class:`CoreConfig` instances.  Validation is delegated to
    :class:`CoreConfig` itself, so the spec layer rejects exactly the
    geometries the core would.
    """
    if isinstance(value, CoreConfig):
        return (value.k, value.n)
    if isinstance(value, str):
        parts = value.lower().split("x")
        if len(parts) != 2:
            raise DataflowError(
                f"geometry must look like 'KxN' (e.g. '16x16'), "
                f"got {value!r}"
            )
        try:
            k, n = (int(part) for part in parts)
        except ValueError:
            raise DataflowError(
                f"geometry must be two integers 'KxN', got {value!r}"
            ) from None
    else:
        try:
            k, n = value
        except (TypeError, ValueError):
            raise DataflowError(
                f"geometry must be 'KxN' or a (k, n) pair, got {value!r}"
            ) from None
    config = CoreConfig(k=k, n=n)
    return (config.k, config.n)


def describe_geometry(geometry: "tuple[int, int]") -> str:
    k, n = geometry
    return f"{k}x{n}"


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: a net on one design-space assignment.

    Attributes:
        net: zoo model name.
        backend: canonical compute-backend spelling (a registered name
            or a "first/interior/last" mixed profile).
        precision: canonical precision-profile name.
        geometry: validated ``(k, n)`` array shape.
    """

    net: str
    backend: str
    precision: str
    geometry: "tuple[int, int]" = DEFAULT_GEOMETRY

    def config(self, base: "CoreConfig | None" = None) -> CoreConfig:
        """This point's geometry applied to ``base`` (latency knobs
        and base precision carried over)."""
        base = base if base is not None else CoreConfig()
        k, n = self.geometry
        if (k, n) == (base.k, base.n):
            return base
        return replace(base, k=k, n=n)

    def describe(self) -> str:
        return (
            f"{self.net} @ {self.backend}/{self.precision}/"
            f"{describe_geometry(self.geometry)}"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative benchmark sweep: axes, not loops.

    Attributes:
        name: registry/display name.
        nets: zoo model names (>= 1).
        backends: compute-backend names or mixed profiles.
        precisions: precision-profile names/specs.
        geometries: array shapes ("KxN" strings or (k, n) pairs).
        batch: images per point run.
        quick: use the CI-speed preset.
        scheduling: apply burst-aware tile scheduling when lowering.
        workers: shard-pool sizes (serving sweeps only; empty
            otherwise).
        description: one-line summary for ``python -m repro list``.
    """

    name: str
    nets: "tuple[str, ...]"
    backends: "tuple[str, ...]" = ("tempus",)
    precisions: "tuple[str, ...]" = ("int8",)
    geometries: "tuple[tuple[int, int], ...]" = (DEFAULT_GEOMETRY,)
    batch: int = 1
    quick: bool = False
    scheduling: bool = True
    workers: "tuple[int, ...]" = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise DataflowError("sweep spec needs a name")
        nets = tuple(self.nets)
        if not nets:
            raise DataflowError("sweep needs >= 1 net")
        check_models(nets)
        if len(set(nets)) != len(nets):
            raise DataflowError("duplicate nets in sweep")
        if not self.backends:
            raise DataflowError("backend sweep must name >= 1 backend")
        backends = tuple(
            backend_profile(entry).describe() for entry in self.backends
        )
        if len(set(backends)) != len(backends):
            raise DataflowError("duplicate backends in sweep")
        precisions = tuple(
            precision_profile(entry).name for entry in self.precisions
        )
        if not precisions:
            raise DataflowError("sweep needs >= 1 precision profile")
        if len(set(precisions)) != len(precisions):
            raise DataflowError("duplicate precision profiles in sweep")
        geometries = tuple(
            parse_geometry(entry) for entry in self.geometries
        )
        if not geometries:
            raise DataflowError("sweep needs >= 1 geometry")
        if len(set(geometries)) != len(geometries):
            raise DataflowError("duplicate geometries in sweep")
        if self.batch < 1:
            raise DataflowError("batch must be >= 1")
        if any(count < 1 for count in self.workers):
            raise DataflowError("worker counts must be >= 1")
        # Deduplicate and sort ascending so a serving sweep (and its
        # monotonic-scaling flag) always reads smallest -> largest.
        workers = tuple(
            sorted(dict.fromkeys(int(count) for count in self.workers))
        )
        object.__setattr__(self, "nets", nets)
        object.__setattr__(self, "backends", backends)
        object.__setattr__(self, "precisions", precisions)
        object.__setattr__(self, "geometries", geometries)
        object.__setattr__(self, "batch", int(self.batch))
        object.__setattr__(self, "workers", workers)

    def points(self) -> "tuple[SweepPoint, ...]":
        """The cartesian product of the axes, nets outermost (the
        iteration order every driver uses)."""
        return tuple(
            SweepPoint(
                net=net,
                backend=backend,
                precision=precision,
                geometry=geometry,
            )
            for net, backend, precision, geometry in itertools.product(
                self.nets,
                self.backends,
                self.precisions,
                self.geometries,
            )
        )

    def axes(self) -> dict:
        """JSON-ready axis listing (what the payloads and
        ``repro list`` show)."""
        axes = {
            "nets": list(self.nets),
            "backends": list(self.backends),
            "precisions": list(self.precisions),
            "geometries": [
                describe_geometry(geometry)
                for geometry in self.geometries
            ],
        }
        if self.workers:
            axes["workers"] = list(self.workers)
        return axes

    def describe_axes(self) -> str:
        return " ".join(
            f"{axis}={','.join(str(value) for value in values)}"
            for axis, values in self.axes().items()
        )


_SWEEPS: "dict[str, SweepSpec]" = {}


def register_sweep(spec: SweepSpec) -> SweepSpec:
    """Add a named spec to the registry (``repro list`` enumerates
    it)."""
    if spec.name in _SWEEPS:
        raise DataflowError(f"duplicate sweep spec {spec.name!r}")
    _SWEEPS[spec.name] = spec
    return spec


def get_sweep(name: str) -> SweepSpec:
    try:
        return _SWEEPS[name]
    except KeyError:
        raise DataflowError(
            f"unknown sweep spec {name!r}; registered: "
            f"{', '.join(sorted(_SWEEPS))}"
        ) from None


def registered_sweeps() -> "tuple[SweepSpec, ...]":
    return tuple(_SWEEPS[name] for name in sorted(_SWEEPS))


#: The default sweeps behind the benchmark drivers, as declarative
#: data.  Drivers build ad-hoc specs from their arguments; these
#: registered copies are the documented defaults.
NETWORKS_SWEEP = register_sweep(
    SweepSpec(
        name="networks",
        nets=DEFAULT_MODELS,
        backends=("binary", "tempus"),
        precisions=("int8",),
        batch=4,
        description=(
            "batched inference on both engines (BENCH_networks.json)"
        ),
    )
)

SERVING_SWEEP = register_sweep(
    SweepSpec(
        name="serving",
        nets=DEFAULT_SERVING_MODELS,
        backends=("tempus",),
        precisions=("int8",),
        workers=DEFAULT_WORKER_COUNTS,
        batch=1,
        description=(
            "sharded serving across worker counts (BENCH_serving.json)"
        ),
    )
)

PRECISION_SWEEP = register_sweep(
    SweepSpec(
        name="precision",
        nets=DEFAULT_SERVING_MODELS,
        backends=("tempus", "binary"),
        precisions=DEFAULT_PRECISION_SWEEP,
        batch=4,
        description=(
            "precision scaling on both engines (BENCH_precision.json)"
        ),
    )
)

BACKENDS_SWEEP = register_sweep(
    SweepSpec(
        name="backends",
        nets=DEFAULT_SERVING_MODELS,
        backends=DEFAULT_BACKEND_SWEEP,
        precisions=DEFAULT_BACKEND_PRECISIONS,
        batch=4,
        description="compute-backend sweep (BENCH_backends.json)",
    )
)

LLM_SWEEP = register_sweep(
    SweepSpec(
        name="llm",
        nets=("tiny_llm",),
        backends=DEFAULT_BACKEND_SWEEP,
        precisions=DEFAULT_BACKEND_PRECISIONS,
        batch=1,
        description=(
            "autoregressive transformer-block decode: per-token "
            "latency on all backends (BENCH_llm.json)"
        ),
    )
)

PARETO_SWEEP = register_sweep(
    SweepSpec(
        name="pareto",
        nets=("mobilenet_v2",),
        backends=DEFAULT_TUNE_BACKENDS,
        precisions=DEFAULT_TUNE_PRECISIONS,
        geometries=DEFAULT_TUNE_GEOMETRIES,
        batch=1,
        description=(
            "design-space autotuner grid: backend x precision x "
            "geometry Pareto search (BENCH_pareto.json)"
        ),
    )
)
