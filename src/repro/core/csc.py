"""Tempus Core's modified convolution sequence controller.

The schedule (kernel group -> output pixel -> window position -> channel
block) is *identical* to NVDLA's — that is the dataflow-compliance claim.
Two modifications from the paper:

* **Transposed feature feed**: the PCU consumes the feature atom as a held
  column against the temporally streaming weights, exploiting
  ``W x F^T = accum(W ⊙ F)``; behaviourally the atom contents are the same,
  so this class only marks the orientation and holds each atom stable for
  the full burst (enforced naturally by channel back-pressure).
* **Weight pre-staging**: the per-lane 2s-unary encoders are loaded from
  the weight atom when the burst starts, so the CSC exposes the burst
  length to its stall logic.
"""

from __future__ import annotations

from repro.nvdla.csc import AtomJob, SequenceController
from repro.unary.encoding import TwosUnaryCode, UnaryCode


class TempusSequenceController(SequenceController):
    """CSC variant feeding the PCU."""

    #: Feature atoms are presented transposed (held column vs weight rows).
    transposed_feed = True

    def __init__(self, *args, code: UnaryCode | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.code = code if code is not None else TwosUnaryCode()

    def burst_cycles_for(self, job: AtomJob) -> int:
        """Burst length the PCU will need for a job — the largest weight
        magnitude in the k x n block, halved by 2s-unary coding (min 1)."""
        max_magnitude = int(abs(job.weight_block).max())
        return self.code.step_cycles(max_magnitude)
