"""The tub (temporal-unary-binary) multiplier.

One lane multiplies a *binary* activation by a *temporally encoded* weight:
for every pulse of the weight stream the binary operand (shifted left for a
value-2 pulse) is added to the running sum — Fig. 2 of the paper.  The lane
is exact: after ``ceil(|w| / 2)`` cycles the accumulator holds ``a * w``.

Hardware content per lane (see :mod:`repro.core.hwmodel`): the weight
register doubling as a down-counter, pulse-select logic, an operand gate
(select 0 / a / a<<1) and sign conditioning — no array multiplier, which is
the area/power story of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.trace import TraceRecorder
from repro.unary.encoder import TemporalEncoder
from repro.unary.encoding import TwosUnaryCode, UnaryCode
from repro.utils.intrange import IntSpec


class TubMultiplier:
    """Cycle-accurate single-lane tub multiplier."""

    def __init__(self, code: UnaryCode | None = None) -> None:
        self.code = code if code is not None else TwosUnaryCode()
        self._encoder = TemporalEncoder(self.code)
        self._activation = 0
        self._accumulator = 0
        self._loaded = False
        #: signed pulse emitted on the most recent tick (trace aid).
        self.last_pulse = 0

    def load(self, activation: int, weight: int) -> int:
        """Latch the operand pair; returns the burst length in cycles."""
        self._activation = int(activation)
        self._encoder.load(int(weight))
        self._accumulator = 0
        self._loaded = True
        return self.code.cycles_for(weight)

    @property
    def busy(self) -> bool:
        return self._encoder.busy

    @property
    def is_silent(self) -> bool:
        """A zero weight never pulses; the lane stays inactive for the whole
        burst (the paper's sparsity exploitation)."""
        return self._loaded and not self._encoder.busy

    @property
    def product(self) -> int:
        return self._accumulator

    def tick(self) -> int:
        """Advance one cycle; returns this cycle's contribution
        (pulse x activation)."""
        if not self._loaded:
            raise SimulationError("tub multiplier ticked before load()")
        pulse = self._encoder.tick()
        self.last_pulse = pulse
        contribution = pulse * self._activation
        self._accumulator += contribution
        return contribution

    def run_to_completion(self) -> int:
        """Drain the stream; returns the exact product."""
        while self.busy:
            self.tick()
        return self._accumulator


class TubLaneBlock:
    """Vectorized batch of tub lanes advancing in lockstep.

    The per-edge :class:`TubMultiplier` ticks one lane one cycle at a time;
    this block holds the *same* lane state (residual weight magnitude, sign,
    latched activation, accumulator) for an arbitrary array of lanes and
    advances all of them by whole multi-cycle jumps with closed-form NumPy
    ops.  A tub burst is exact — after ``m`` cycles a 2s-unary lane has
    drained ``min(2 * m, |w|)`` of its magnitude — so jumping by the burst
    length loses nothing against edge-by-edge ticking (the vectorized
    engine's correctness argument; the equivalence tests assert it).
    """

    def __init__(
        self, shape: "int | tuple[int, ...]", code: UnaryCode | None = None
    ) -> None:
        self.code = code if code is not None else TwosUnaryCode()
        self.shape = (shape,) if isinstance(shape, int) else tuple(shape)
        self._activations = np.zeros(self.shape, dtype=np.int64)
        self._signs = np.ones(self.shape, dtype=np.int64)
        self._remaining = np.zeros(self.shape, dtype=np.int64)
        self._accumulators = np.zeros(self.shape, dtype=np.int64)
        self._silent = np.zeros(self.shape, dtype=bool)
        self._loaded = False

    def load_block(
        self, activations: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Latch one operand pair per lane; returns per-lane burst lengths.

        The batch equivalent of :meth:`TubMultiplier.load` over every lane
        at once.
        """
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if activations.shape != self.shape or weights.shape != self.shape:
            raise SimulationError(
                f"operand shapes {activations.shape}/{weights.shape} != "
                f"{self.shape}"
            )
        self._activations = activations
        self._signs = np.where(weights < 0, -1, 1).astype(np.int64)
        self._remaining = np.abs(weights)
        self._accumulators = np.zeros(self.shape, dtype=np.int64)
        self._silent = weights == 0
        self._loaded = True
        return self.code.cycles_array(weights)

    @property
    def busy_mask(self) -> np.ndarray:
        """Lanes still streaming pulses."""
        return self._remaining > 0

    @property
    def silent_mask(self) -> np.ndarray:
        """Lanes latched with a zero weight (inactive the whole burst)."""
        if not self._loaded:
            return np.zeros(self.shape, dtype=bool)
        return self._silent

    @property
    def busy(self) -> bool:
        return bool(self._remaining.any())

    @property
    def products(self) -> np.ndarray:
        """Per-lane accumulators (the exact products once drained)."""
        return self._accumulators

    def step_vec(self, cycles: int = 1) -> np.ndarray:
        """Advance every lane ``cycles`` edges in one jump; returns the
        per-lane contribution emitted over the jump."""
        if not self._loaded:
            raise SimulationError("lane block stepped before load_block()")
        if cycles < 0:
            raise SimulationError(f"cannot step {cycles} cycles")
        after = self.code.magnitude_after(self._remaining, cycles)
        emitted = (self._remaining - after) * self._signs
        contribution = emitted * self._activations
        self._accumulators += contribution
        self._remaining = after
        return contribution

    def run_burst_vec(self) -> tuple[np.ndarray, int]:
        """Drain every lane; returns (products, burst cycles consumed)."""
        if not self._loaded:
            raise SimulationError("lane block run before load_block()")
        burst = int(self.code.cycles_array(self._remaining).max(initial=0))
        self.step_vec(burst)
        return self._accumulators, burst


@dataclass(frozen=True)
class TubTrace:
    """A full cycle-by-cycle record of one tub multiplication (Fig. 2)."""

    activation: int
    weight: int
    product: int
    cycles: int
    trace: TraceRecorder

    def render(self) -> str:
        return self.trace.render(
            title=(
                f"tub multiply: a={self.activation}, w={self.weight} -> "
                f"{self.product} in {self.cycles} cycle(s)"
            )
        )


def tub_multiply(
    activation: int,
    weight: int,
    code: UnaryCode | None = None,
    spec: IntSpec | None = None,
) -> TubTrace:
    """Run one tub multiplication and capture its dataflow trace.

    Args:
        activation: binary operand.
        weight: temporally encoded operand.
        code: unary code (defaults to 2s-unary).
        spec: optional precision to range-check the operands against.
    """
    if spec is not None:
        spec.check(activation)
        spec.check(weight)
    lane = TubMultiplier(code)
    cycles = lane.load(activation, weight)
    trace = TraceRecorder()
    cycle = 0
    while lane.busy:
        contribution = lane.tick()
        trace.sample_many(
            cycle,
            {
                "pulse": lane.last_pulse,
                "contribution": contribution,
                "accumulator": lane.product,
                "remaining": lane._encoder.remaining_cycles,  # noqa: SLF001
            },
        )
        cycle += 1
    if cycle == 0:
        trace.sample_many(
            0, {"pulse": 0, "contribution": 0, "accumulator": 0,
                "remaining": 0}
        )
    return TubTrace(
        activation=int(activation),
        weight=int(weight),
        product=lane.product,
        cycles=cycles,
        trace=trace,
    )
