"""Burst-aware tile scheduling (the paper's "custom dataflows and compiler
optimizations" future work, Sec. VI).

A Tempus burst lasts as long as the largest weight magnitude in its k x n
tile, so one outlier weight stalls 255 other lanes.  Because the CSC is
free to walk channels and kernels in any fixed order (a data-layout
decision, not a hardware change), permuting channels/kernels so that
large-magnitude weights share tiles provably reduces total burst cycles:

For a fixed block size b, partitioning values into blocks to minimise the
sum of block maxima is solved by sorting — blocks of consecutive sorted
values make each block's maximum as small as the order statistics allow.
We apply that independently to the channel axis (blocks of n) and the
kernel axis (groups of k), using each channel's / kernel's own maximum
magnitude as the sort key.

The permutation is semantics-preserving: activations are reordered with
the same channel permutation and outputs carry the kernel permutation,
which the accumulator unwinds for free (it is just an address mapping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.latency import burst_cycle_map, cached_burst_cycle_map
from repro.errors import DataflowError
from repro.nvdla.config import CoreConfig
from repro.unary.encoding import TwosUnaryCode, UnaryCode


@dataclass(frozen=True)
class TileSchedule:
    """An optimized weight-tile layout.

    Attributes:
        kernel_order: permutation applied to the kernel axis.
        channel_order: permutation applied to the channel axis.
        baseline_cycles: per-pixel burst cycles before optimization.
        optimized_cycles: per-pixel burst cycles after optimization.
    """

    kernel_order: np.ndarray
    channel_order: np.ndarray
    baseline_cycles: int
    optimized_cycles: int

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / max(self.optimized_cycles, 1)

    @property
    def cycles_saved(self) -> int:
        return self.baseline_cycles - self.optimized_cycles


def apply_schedule(
    weights: np.ndarray, schedule: TileSchedule
) -> np.ndarray:
    """Reorder a (K, C, R, S) weight tensor per the schedule."""
    weights = np.asarray(weights)
    return weights[schedule.kernel_order][:, schedule.channel_order]


def apply_to_activations(
    activations: np.ndarray, schedule: TileSchedule
) -> np.ndarray:
    """Reorder a (C, H, W) activation tensor to match the schedule."""
    return np.asarray(activations)[schedule.channel_order]


def restore_outputs(
    outputs: np.ndarray, schedule: TileSchedule
) -> np.ndarray:
    """Undo the kernel permutation on a (K, OH, OW) output tensor."""
    inverse = np.argsort(schedule.kernel_order)
    return np.asarray(outputs)[inverse]


def optimize_tile_schedule(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> TileSchedule:
    """Find kernel/channel permutations minimising total burst cycles.

    Args:
        weights: (K, C, R, S) integer weights (one convolution / group).
        config: array geometry (tile size k x n).
        code: unary code (default 2s-unary).

    Returns:
        the schedule with before/after per-pixel cycle counts.
    """
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise DataflowError("expected (K, C, R, S) weights")
    code = code if code is not None else TwosUnaryCode()

    magnitudes = np.abs(weights.astype(np.int64))
    # Sort keys: the largest magnitude each kernel / channel ever streams.
    kernel_key = magnitudes.max(axis=(1, 2, 3))
    channel_key = magnitudes.max(axis=(0, 2, 3))
    kernel_order = np.argsort(kernel_key, kind="stable")[::-1]
    channel_order = np.argsort(channel_key, kind="stable")[::-1]

    baseline = int(cached_burst_cycle_map(weights, config, code).sum())
    permuted = weights[kernel_order][:, channel_order]
    # The permuted tensor is fresh each call — caching it would only churn
    # the LRU, so use the uncached map here.
    optimized = int(burst_cycle_map(permuted, config, code).sum())

    if optimized >= baseline:
        # Sorting never helps degenerate tensors (single tile); keep the
        # identity layout so the schedule is a no-op.
        return TileSchedule(
            kernel_order=np.arange(weights.shape[0]),
            channel_order=np.arange(weights.shape[1]),
            baseline_cycles=baseline,
            optimized_cycles=baseline,
        )
    return TileSchedule(
        kernel_order=kernel_order,
        channel_order=channel_order,
        baseline_cycles=baseline,
        optimized_cycles=optimized,
    )


def model_schedule_savings(
    model, config: CoreConfig, code: UnaryCode | None = None
) -> list[tuple[str, int, int, float]]:
    """Per-layer scheduling gains for a quantized model.

    Returns:
        (layer name, baseline cycles, optimized cycles, speedup) rows,
        with cycles weighted by the layer's output pixels.
    """
    from repro.profiling.tiling import iter_group_tensors

    rows = []
    for layer, codes in model.iter_weight_tensors():
        pixels = layer.conv_shape().output_pixels
        baseline = 0
        optimized = 0
        for group_tensor in iter_group_tensors(codes, layer.groups):
            schedule = optimize_tile_schedule(group_tensor, config, code)
            baseline += schedule.baseline_cycles * pixels
            optimized += schedule.optimized_cycles * pixels
        rows.append(
            (
                layer.name,
                baseline,
                optimized,
                baseline / max(optimized, 1),
            )
        )
    return rows
