"""PE Cell Unit (PCU) — Tempus Core's CMAC replacement.

Holds k tub PE cells in lockstep.  One :class:`AtomJob` becomes one burst
of ``max(1, ceil(max|w| / 2))`` cycles over the whole k x n tile (the paper:
"the cycle count equals the largest weight magnitude in the k x n array"),
plus an optional cache-in/out overhead at PCU level.  Partial sums are
latched into output registers and only forwarded to the CACC once every
cell has finished — the extra handshaking Tempus Core adds to stay dataflow
compatible.

Two cycle models of the same unit:

* :class:`PcuUnit` — tick-level: every clock edge ticks every lane
  (O(burst x k x n) interpreter work per atom); drives waveform traces and
  protocol/back-pressure tests.
* :class:`VectorPcuUnit` — burst-level: one tick executes a whole atom on a
  vectorized (k, n) lane-state array and reports the burst span so the
  simulator can jump the clock (``CycleSimulator.run_events``).  Outputs,
  cycle counts and gating statistics are bit-identical to :class:`PcuUnit`.
"""

from __future__ import annotations

import numpy as np

from repro.core.pe_cell import TubCellBlock, TubPeCell
from repro.nvdla.cmac import PsumPacket
from repro.nvdla.config import CoreConfig
from repro.nvdla.csc import AtomJob
from repro.sim.handshake import ValidReadyChannel
from repro.sim.kernel import Module
from repro.unary.encoding import TwosUnaryCode, UnaryCode


class PcuUnit(Module):
    """Cycle model of the PCU."""

    def __init__(
        self,
        config: CoreConfig,
        in_channel: ValidReadyChannel,
        out_channel: ValidReadyChannel,
        code: UnaryCode | None = None,
        name: str = "pcu",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.code = code if code is not None else TwosUnaryCode()
        self.in_channel = in_channel
        self.out_channel = out_channel
        self.cells = [
            TubPeCell(config.n, self.code) for _ in range(config.k)
        ]
        self._job: AtomJob | None = None
        self._burst_remaining = 0
        self._overhead_remaining = 0
        self._silent_this_burst = 0
        self._pending: PsumPacket | None = None
        self.bursts = 0
        self.burst_cycles = 0
        self.stall_cycles = 0
        self.silent_lane_cycles = 0

    def reset(self) -> None:
        self._job = None
        self._burst_remaining = 0
        self._overhead_remaining = 0
        self._silent_this_burst = 0
        self._pending = None
        self.bursts = 0
        self.burst_cycles = 0
        self.stall_cycles = 0
        self.silent_lane_cycles = 0

    def _load(self, job: AtomJob) -> None:
        burst = 0
        for index, cell in enumerate(self.cells):
            burst = max(
                burst, cell.load_atom(job.feature, job.weight_block[index])
            )
        # Even an all-zero tile costs one cycle to produce its (zero)
        # partial sums for the CACC sequence.
        self._burst_remaining = max(1, burst)
        self._overhead_remaining = self.config.burst_overhead
        self._silent_this_burst = int((job.weight_block == 0).sum())
        self._job = job
        self.bursts += 1

    def _finish(self) -> None:
        assert self._job is not None
        psums = np.fromiter(
            (cell.partial_sum for cell in self.cells),
            dtype=np.int64,
            count=self.config.k,
        )
        atom = self._job.atom
        self._pending = PsumPacket(
            group=atom.group,
            out_y=atom.out_y,
            out_x=atom.out_x,
            psums=psums,
            last=self._job.last,
        )
        self._job = None

    def tick(self) -> None:
        # 1) forward a completed burst's partial sums
        if self._pending is not None:
            if self.out_channel.ready:
                self.out_channel.push(self._pending)
                self._pending = None
            else:
                self.stall_cycles += 1
        # 2) advance the active burst by one cycle
        if self._job is not None:
            if self._overhead_remaining > 0:
                self._overhead_remaining -= 1
                self.burst_cycles += 1
            elif self._burst_remaining > 0:
                self.silent_lane_cycles += self._silent_this_burst
                for cell in self.cells:
                    cell.tick()
                self.burst_cycles += 1
                self._burst_remaining -= 1
            if (
                self._job is not None
                and self._overhead_remaining == 0
                and self._burst_remaining == 0
            ):
                # Hand the k partial sums to the output registers; if the
                # previous packet is still waiting on the CACC, hold the
                # array (back-pressure) until the register frees up.
                if self._pending is None:
                    self._finish()
                else:
                    self.stall_cycles += 1
        # 3) accept the next atom once the array is free (the output
        #    register decouples the next burst from the CACC handoff)
        if self._job is None and self.in_channel.valid:
            self._load(self.in_channel.pop())


class VectorPcuUnit(Module):
    """Burst-level cycle model of the PCU.

    One tick consumes one :class:`AtomJob`, runs the whole k x n burst as a
    handful of NumPy ops (:class:`TubCellBlock`), and records the span the
    burst would occupy on hardware in :attr:`last_span` — feed it to
    :meth:`CycleSimulator.run_events` as the clock jump.  Counter and cycle
    accounting reproduce :class:`PcuUnit` exactly for a consumer that
    drains the output channel every event (the CACC does): a burst occupies
    ``burst_overhead + max(1, burst)`` edges, the first load after an idle
    period exposes one pipeline-fill edge, and silent lanes accrue only
    over compute (not overhead) edges.  Under *sustained* back-pressure the
    two models diverge: :class:`PcuUnit`'s output register lets the next
    burst run while a packet waits, whereas this unit serializes (it won't
    start a burst while one is pending) — event-skipping cannot know how
    many stall edges pass before the consumer frees the channel, so stalls
    here count per event, not per edge.
    """

    def __init__(
        self,
        config: CoreConfig,
        in_channel: ValidReadyChannel,
        out_channel: ValidReadyChannel,
        code: UnaryCode | None = None,
        name: str = "pcu-vec",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.code = code if code is not None else TwosUnaryCode()
        self.in_channel = in_channel
        self.out_channel = out_channel
        self.cell_block = TubCellBlock(config.k, config.n, self.code)
        self._pending: PsumPacket | None = None
        self._was_busy = False
        #: hardware cycles the most recent tick modeled (the event span).
        self.last_span = 0
        self.bursts = 0
        self.burst_cycles = 0
        self.stall_cycles = 0
        self.silent_lane_cycles = 0

    def reset(self) -> None:
        self.cell_block = TubCellBlock(
            self.config.k, self.config.n, self.code
        )
        self._pending = None
        self._was_busy = False
        self.last_span = 0
        self.bursts = 0
        self.burst_cycles = 0
        self.stall_cycles = 0
        self.silent_lane_cycles = 0

    def tick(self) -> None:
        span = 0
        # 1) forward the previous burst's partial sums (overlaps the next
        #    burst, so it contributes no span of its own mid-stream)
        if self._pending is not None:
            if self.out_channel.ready:
                self.out_channel.push(self._pending)
                self._pending = None
            else:
                self.stall_cycles += 1
                span = 1
        # 2) execute one whole atom as a single vectorized burst
        if self._pending is None and self.in_channel.valid:
            job = self.in_channel.pop()
            if not self._was_busy:
                # Pipeline fill: the load edge is only exposed when the
                # array was idle; back-to-back loads overlap the previous
                # burst's last compute edge.
                span += 1
            burst = max(
                1,
                self.cell_block.load_block(job.feature, job.weight_block),
            )
            psums, _ = self.cell_block.run_burst_vec()
            span += self.config.burst_overhead + burst
            self.burst_cycles += self.config.burst_overhead + burst
            self.silent_lane_cycles += self.cell_block.silent_lanes * burst
            self.bursts += 1
            atom = job.atom
            self._pending = PsumPacket(
                group=atom.group,
                out_y=atom.out_y,
                out_x=atom.out_x,
                psums=psums,
                last=job.last,
            )
            self._was_busy = True
        elif not self.in_channel.valid:
            # Idle or drain event: one edge passes with no burst running.
            self._was_busy = False
            span = max(span, 1)
        self.last_span = max(span, 1)
