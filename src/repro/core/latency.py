"""Analytic latency model for Tempus Core.

The number of compute cycles for a k x n array burst is determined by the
largest weight magnitude present in the array (Sec. III); this module
computes burst maps and layer totals vectorised, which is what makes
whole-CNN profiling (Figs. 7/8, Sec. V-C) fast.
"""

from __future__ import annotations

import hashlib
import math
import os
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

import numpy as np

try:  # POSIX advisory locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.errors import DataflowError
from repro.nvdla.config import CoreConfig
from repro.nvdla.dataflow import ConvShape
from repro.unary.encoding import TwosUnaryCode, UnaryCode
from repro.utils.intrange import IntSpec


def worst_case_cycles(
    precision: IntSpec, code: UnaryCode | None = None
) -> int:
    """Worst-case burst length for a precision: INT8 -> 64, INT4 -> 4,
    INT2 -> 1 (2s-unary)."""
    code = code if code is not None else TwosUnaryCode()
    return code.cycles_for_magnitude(precision.max_magnitude)


def _tiled_view(weights: np.ndarray, k: int, n: int) -> np.ndarray:
    """Zero-pad a (K, C, R, S) tensor to whole tiles and expose it as a
    (groups, k, blocks, n, R, S) view — one (k, n) slice per atom tile,
    padded exactly as the MAC array sees tensor-edge atoms."""
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise DataflowError("expected (K, C, R, S) weights")
    kernels, channels, kernel_h, kernel_w = weights.shape
    groups = math.ceil(kernels / k)
    blocks = math.ceil(channels / n)
    padded = np.zeros(
        (groups * k, blocks * n, kernel_h, kernel_w), dtype=np.int64
    )
    padded[:kernels, :channels] = weights
    return padded.reshape(groups, k, blocks, n, kernel_h, kernel_w)


def tile_max_magnitudes(
    weights: np.ndarray, k: int, n: int
) -> np.ndarray:
    """Largest |weight| per (group, channel-block, ky, kx) tile.

    Args:
        weights: (K, C, R, S) integer weights.
        k / n: array geometry (kernels per group / channels per block).

    Returns:
        int64 array of shape (groups, channel_blocks, R, S).
    """
    tiled = np.abs(_tiled_view(weights, k, n))
    return tiled.max(axis=(1, 3))


def burst_cycle_map(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> np.ndarray:
    """Burst length of every (group, channel-block, ky, kx) tile,
    including the minimum 1 cycle for all-zero tiles and the PCU's
    cache-in/out overhead."""
    code = code if code is not None else TwosUnaryCode()
    maxima = tile_max_magnitudes(weights, config.k, config.n)
    return code.step_cycles_array(maxima) + config.burst_overhead


# ----------------------------------------------------------------------
# Burst-map cache
#
# Scheduling, profiling and the analytic engines all re-derive the same
# burst map for the same weight tensor (often several times per layer,
# and once per *group* for depthwise/grouped convolutions).  The map
# depends only on (weights, k, n, burst_overhead, code), so a keyed LRU
# makes those passes free.  Group tensors are slice views of a stable
# per-layer array, so the key anchors on the view's base array identity
# plus the view's memory location (data pointer, shape, strides) — fresh
# view objects over the same storage hit the same entry.  A weakref to
# the base array guards against a recycled ``id`` false-hitting after
# the owner dies.  Each entry additionally stores a cheap content
# fingerprint (first/last element + plain and position-weighted sums)
# of the weights it was computed from; a lookup whose fingerprint
# mismatches invalidates the entry and recomputes, so in-place mutation
# of a cached tensor is detected unless the edit preserves all four
# checksum components at once (which no single-element write and no
# simple permutation/compensating rewrite can).  Producers in this repo
# still treat quantized weights as immutable —
# :attr:`QuantizedLayer.codes64` is marked read-only — the fingerprint
# is a correctness backstop, not a license to mutate.
#
# Process model (the sharded serving runtime forks workers holding this
# module): the cache is strictly process-local state, and both
# multiprocessing start methods are safe.  With ``fork`` a worker
# inherits the parent's entries copy-on-write — the owner arrays are
# duplicated at the same virtual addresses, so the (id, data pointer)
# keys and the weakrefs all still resolve in the child, and a worker
# whose compiled network was warmed during lowering starts with a hot
# cache for free.  With ``spawn`` the module is imported fresh and the
# worker rebuilds its maps on first use.  Counters are inherited under
# fork (deltas, as reported by the runtime, stay correct);
# :func:`burst_map_cache_stats` exposes the owning pid and whether the
# cache was inherited so worker provenance is observable.
# ----------------------------------------------------------------------
_BURST_MAP_CACHE_SIZE = 4096
_burst_map_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_burst_map_hits = 0
_burst_map_misses = 0
_burst_map_invalidations = 0
#: Pid that created (or last cleared) this process's cache state; a
#: forked worker sees a different ``os.getpid()`` until it clears.
_burst_map_origin_pid = os.getpid()

# ----------------------------------------------------------------------
# Persistent (on-disk) tier
#
# The in-memory LRU dies with the process: every supervisor respawn,
# every ``spawn``-mode worker and every fresh CLI invocation re-derives
# the same burst maps from scratch.  The disk tier makes compile+warm
# survive restarts: entries are content-addressed ``.npy`` files under a
# shared directory, keyed by a digest of the raw weight bytes plus the
# array geometry (k, n, burst_overhead), the unary code name and a
# format version — so a key can never serve a map for different
# contents, and all processes pointed at the same directory (sharded
# workers under either start method, respawned incarnations, separate
# benchmark runs) share one warm cache.
#
# Concurrency: loads take a shared ``flock`` on a sidecar lock file,
# publishes write to a unique temp file in the same directory and
# ``os.replace`` it into place under an exclusive lock — readers only
# ever see a complete entry, concurrent writers of the same key are
# idempotent (same contents), and a writer killed mid-write leaves at
# worst an orphaned ``*.tmp`` that no reader consults.  ``flock`` drops
# automatically when a process dies, so a crashed worker can never
# leave an entry locked.  A truncated/corrupt entry (e.g. written by a
# pre-atomic-rename version) is treated as a miss and atomically
# rewritten.
#
# Disabled unless a directory is configured — via
# :func:`configure_burst_map_disk_cache` or the
# ``REPRO_BURST_CACHE_DIR`` environment variable (which child processes
# inherit, so spawn-mode workers warm up for free).
# ----------------------------------------------------------------------
#: Bump when the burst-map computation or the entry layout changes:
#: stale-format entries then miss instead of being misread.
_DISK_CACHE_VERSION = 1
_disk_cache_dir: "Path | None" = None
_disk_hits = 0
_disk_misses = 0
_disk_writes = 0

if os.environ.get("REPRO_BURST_CACHE_DIR"):
    _disk_cache_dir = Path(os.environ["REPRO_BURST_CACHE_DIR"])


def configure_burst_map_disk_cache(path=None) -> "Path | None":
    """Point the persistent burst-map tier at ``path`` (``None``
    disables it).  Returns the resolved directory, created on demand."""
    global _disk_cache_dir
    if path is None:
        _disk_cache_dir = None
        return None
    _disk_cache_dir = Path(path)
    _disk_cache_dir.mkdir(parents=True, exist_ok=True)
    return _disk_cache_dir


def burst_map_disk_cache_dir() -> "Path | None":
    """The configured persistent cache directory (``None`` = disabled)."""
    return _disk_cache_dir


@contextmanager
def _disk_lock(directory: Path, exclusive: bool):
    """Advisory cross-process lock over one cache directory.  A no-op
    where ``fcntl`` is unavailable — the atomic-rename publish keeps
    readers safe regardless; the lock only serializes same-key work."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = directory / ".lock"
    with open(lock_path, "a+b") as handle:
        fcntl.flock(
            handle, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        )
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _disk_entry_path(
    weights: np.ndarray, config: CoreConfig, code: UnaryCode
) -> Path:
    """Content-addressed entry location: a digest over the exact weight
    bytes + geometry + code + format version."""
    digest = hashlib.blake2b(digest_size=20)
    digest.update(
        repr(
            (
                _DISK_CACHE_VERSION,
                tuple(weights.shape),
                str(weights.dtype),
                config.k,
                config.n,
                config.burst_overhead,
                code.name,
            )
        ).encode()
    )
    digest.update(np.ascontiguousarray(weights).tobytes())
    return _disk_cache_dir / f"burst-{digest.hexdigest()}.npy"


def _disk_load(path: Path) -> "np.ndarray | None":
    """Read one entry; any unreadable/corrupt entry is a miss."""
    try:
        with _disk_lock(path.parent, exclusive=False):
            with open(path, "rb") as handle:
                cycles = np.load(handle, allow_pickle=False)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, EOFError):
        # Truncated or malformed (e.g. a non-atomic writer died
        # mid-write): recompute and atomically replace.
        return None
    cycles = np.asarray(cycles, dtype=np.int64)
    cycles.setflags(write=False)
    return cycles


def _disk_store(path: Path, cycles: np.ndarray) -> bool:
    """Atomically publish one entry: unique temp file in the same
    directory, fsync, then ``os.replace`` under an exclusive lock.  A
    writer killed at any point leaves either the old entry or the new
    one — never a truncated file at the final path."""
    stamp = f"{os.getpid()}-{os.urandom(4).hex()}"
    temp = path.with_name(f".{path.name}.{stamp}.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(temp, "wb") as handle:
            np.save(handle, np.ascontiguousarray(cycles))
            handle.flush()
            os.fsync(handle.fileno())
        with _disk_lock(path.parent, exclusive=True):
            os.replace(temp, path)
    except OSError:
        try:
            temp.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        return False
    return True


def _content_fingerprint(weights: np.ndarray) -> tuple:
    """Cheap content checksum: first/last element, wrap-around sum, a
    position-weighted sum, and a strided squared-position sample.
    Vectorised O(size) passes — far cheaper than recomputing the burst
    map.  Every single-element mutation moves the plain sum;
    permutations and compensating +d/-d pairs preserve the plain sum
    but move the position-weighted one (a swap of unequal values at
    positions i < j shifts it by (j - i) x (difference)).  A *pair* of
    compensating edits can be engineered to cancel in both sums while
    leaving the end elements untouched — e.g. +1/-1 at positions (2, 6)
    against -4/+4 at (3, 4) — which used to slip through and serve a
    stale burst map.  The strided sample term weights up to 1024
    sampled elements by their squared positions: for any two
    sum-cancelling pairs it shifts by d1*(j1^2 - i1^2) + d2*(j2^2 -
    i2^2), which only vanishes together with the linear term when both
    pairs straddle the same position midpoint — so the engineered
    two-pair rewrite is now caught whenever it lands on sampled
    positions (always, for tensors up to 1024 elements)."""
    flat = weights.reshape(-1)
    if flat.size == 0:
        return (0, 0, 0, 0, 0)
    positions = np.arange(1, flat.size + 1, dtype=np.int64)
    stride = max(1, flat.size >> 10)
    sampled_positions = positions[::stride]
    return (
        int(flat[0]),
        int(flat[-1]),
        int(np.sum(flat, dtype=np.int64)),
        int(np.dot(flat, positions)),
        int(np.dot(flat[::stride],
                   sampled_positions * sampled_positions)),
    )


def _burst_map_key(
    weights: np.ndarray, config: CoreConfig, code: UnaryCode
) -> tuple:
    owner = weights
    while owner.base is not None and isinstance(owner.base, np.ndarray):
        owner = owner.base
    return owner, (
        id(owner),
        weights.__array_interface__["data"][0],
        weights.shape,
        weights.strides,
        str(weights.dtype),
        config.k,
        config.n,
        config.burst_overhead,
        code.name,
    )


def cached_burst_cycle_map(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> np.ndarray:
    """Memoized :func:`burst_cycle_map` keyed on the weight tensor's
    storage identity plus the array geometry and code (see cache notes
    above).

    Returns the cached map as read-only; copy before mutating.
    """
    global _burst_map_hits, _burst_map_misses, _burst_map_invalidations
    global _disk_hits, _disk_misses, _disk_writes
    code = code if code is not None else TwosUnaryCode()
    weights = np.asarray(weights)
    owner, key = _burst_map_key(weights, config, code)
    # An own-storage read-only array cannot be mutated under the cache,
    # so skip the O(size) checksum on the hit path for the dominant
    # producers (codes64, schedule-permuted tensors — all frozen).
    immutable = weights.base is None and not weights.flags.writeable
    fingerprint = None if immutable else _content_fingerprint(weights)
    entry = _burst_map_cache.get(key)
    if entry is not None and entry[0]() is owner:
        if fingerprint is None or entry[2] == fingerprint:
            _burst_map_cache.move_to_end(key)
            _burst_map_hits += 1
            return entry[1]
        # The cached tensor was mutated in place under the cache: drop
        # the stale map and fall through to a recompute.
        del _burst_map_cache[key]
        _burst_map_invalidations += 1
    cycles = None
    entry_path = None
    if _disk_cache_dir is not None:
        entry_path = _disk_entry_path(weights, config, code)
        cycles = _disk_load(entry_path)
        if cycles is not None:
            _disk_hits += 1
        else:
            _disk_misses += 1
    if cycles is None:
        cycles = burst_cycle_map(weights, config, code)
        cycles.setflags(write=False)
        if entry_path is not None and _disk_store(entry_path, cycles):
            _disk_writes += 1
    try:
        owner_ref = weakref.ref(owner)
    except TypeError:
        # Some ndarray subclasses reject weakrefs; skip caching for them.
        return cycles
    # Always store the checksum (the miss already pays an O(size) map
    # computation): if the tensor is ever made writable and mutated,
    # later lookups still catch it.
    if fingerprint is None:
        fingerprint = _content_fingerprint(weights)
    _burst_map_cache[key] = (owner_ref, cycles, fingerprint)
    _burst_map_cache.move_to_end(key)
    _burst_map_misses += 1
    while len(_burst_map_cache) > _BURST_MAP_CACHE_SIZE:
        _burst_map_cache.popitem(last=False)
    return cycles


def burst_map_cache_stats() -> dict:
    """Hit/miss counters (observability for the profiling passes and
    the serving workers).  ``inherited`` flags a cache carried across a
    ``fork`` from a parent process (see the process-model notes above)."""
    return {
        "hits": _burst_map_hits,
        "misses": _burst_map_misses,
        "invalidations": _burst_map_invalidations,
        "entries": len(_burst_map_cache),
        "pid": os.getpid(),
        "inherited": os.getpid() != _burst_map_origin_pid,
        "disk_hits": _disk_hits,
        "disk_misses": _disk_misses,
        "disk_writes": _disk_writes,
        "disk_dir": (
            None if _disk_cache_dir is None else str(_disk_cache_dir)
        ),
    }


def clear_burst_map_cache() -> None:
    """Drop all in-memory maps and reset the counters (and claim the
    cache for the current process).  The persistent tier's entries
    survive — it exists precisely to outlive resets and restarts —
    but its counters restart with the rest."""
    global _burst_map_hits, _burst_map_misses, _burst_map_invalidations
    global _burst_map_origin_pid
    global _disk_hits, _disk_misses, _disk_writes
    _burst_map_cache.clear()
    _burst_map_hits = 0
    _burst_map_misses = 0
    _burst_map_invalidations = 0
    _burst_map_origin_pid = os.getpid()
    _disk_hits = 0
    _disk_misses = 0
    _disk_writes = 0


def layer_burst_cycles(
    shape: ConvShape,
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> int:
    """Total PCU compute cycles for one layer: every burst repeats for every
    output pixel."""
    per_pixel = int(cached_burst_cycle_map(weights, config, code).sum())
    return per_pixel * shape.output_pixels


def average_burst_cycles(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> float:
    """Mean burst length across a weight tensor's tiles — the paper's
    "workload-dependent latency" statistic (33 cycles for MobileNetV2,
    31 for ResNeXt101 at 16x16 INT8)."""
    cycles = cached_burst_cycle_map(weights, config, code)
    return float(cycles.mean())


def tile_zero_lane_counts(
    weights: np.ndarray, k: int, n: int
) -> np.ndarray:
    """Zero-weight lanes per (group, channel-block, ky, kx) tile —
    including the zero padding for kernels/channels beyond the tensor
    edge, exactly as the PCU sees each atom.  Silent-lane cycles for a
    layer are ``(counts * effective_burst).sum() * output_pixels``."""
    tiled = _tiled_view(weights, k, n)
    return (tiled == 0).sum(axis=(1, 3))


def tile_idle_cell_counts(
    weights: np.ndarray, k: int, n: int
) -> np.ndarray:
    """All-zero weight rows (clock-gateable MAC cells) per tile — the
    binary CMAC's gating statistic: ``counts.sum() * output_pixels`` is
    the layer's ``gated_cell_cycles``."""
    tiled = _tiled_view(weights, k, n)
    return (~tiled.any(axis=3)).sum(axis=1)
