"""Analytic latency model for Tempus Core.

The number of compute cycles for a k x n array burst is determined by the
largest weight magnitude present in the array (Sec. III); this module
computes burst maps and layer totals vectorised, which is what makes
whole-CNN profiling (Figs. 7/8, Sec. V-C) fast.
"""

from __future__ import annotations

import math
import os
import weakref
from collections import OrderedDict

import numpy as np

from repro.errors import DataflowError
from repro.nvdla.config import CoreConfig
from repro.nvdla.dataflow import ConvShape
from repro.unary.encoding import TwosUnaryCode, UnaryCode
from repro.utils.intrange import IntSpec


def worst_case_cycles(
    precision: IntSpec, code: UnaryCode | None = None
) -> int:
    """Worst-case burst length for a precision: INT8 -> 64, INT4 -> 4,
    INT2 -> 1 (2s-unary)."""
    code = code if code is not None else TwosUnaryCode()
    return code.cycles_for_magnitude(precision.max_magnitude)


def _tiled_view(weights: np.ndarray, k: int, n: int) -> np.ndarray:
    """Zero-pad a (K, C, R, S) tensor to whole tiles and expose it as a
    (groups, k, blocks, n, R, S) view — one (k, n) slice per atom tile,
    padded exactly as the MAC array sees tensor-edge atoms."""
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise DataflowError("expected (K, C, R, S) weights")
    kernels, channels, kernel_h, kernel_w = weights.shape
    groups = math.ceil(kernels / k)
    blocks = math.ceil(channels / n)
    padded = np.zeros(
        (groups * k, blocks * n, kernel_h, kernel_w), dtype=np.int64
    )
    padded[:kernels, :channels] = weights
    return padded.reshape(groups, k, blocks, n, kernel_h, kernel_w)


def tile_max_magnitudes(
    weights: np.ndarray, k: int, n: int
) -> np.ndarray:
    """Largest |weight| per (group, channel-block, ky, kx) tile.

    Args:
        weights: (K, C, R, S) integer weights.
        k / n: array geometry (kernels per group / channels per block).

    Returns:
        int64 array of shape (groups, channel_blocks, R, S).
    """
    tiled = np.abs(_tiled_view(weights, k, n))
    return tiled.max(axis=(1, 3))


def burst_cycle_map(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> np.ndarray:
    """Burst length of every (group, channel-block, ky, kx) tile,
    including the minimum 1 cycle for all-zero tiles and the PCU's
    cache-in/out overhead."""
    code = code if code is not None else TwosUnaryCode()
    maxima = tile_max_magnitudes(weights, config.k, config.n)
    return code.step_cycles_array(maxima) + config.burst_overhead


# ----------------------------------------------------------------------
# Burst-map cache
#
# Scheduling, profiling and the analytic engines all re-derive the same
# burst map for the same weight tensor (often several times per layer,
# and once per *group* for depthwise/grouped convolutions).  The map
# depends only on (weights, k, n, burst_overhead, code), so a keyed LRU
# makes those passes free.  Group tensors are slice views of a stable
# per-layer array, so the key anchors on the view's base array identity
# plus the view's memory location (data pointer, shape, strides) — fresh
# view objects over the same storage hit the same entry.  A weakref to
# the base array guards against a recycled ``id`` false-hitting after
# the owner dies.  Each entry additionally stores a cheap content
# fingerprint (first/last element + plain and position-weighted sums)
# of the weights it was computed from; a lookup whose fingerprint
# mismatches invalidates the entry and recomputes, so in-place mutation
# of a cached tensor is detected unless the edit preserves all four
# checksum components at once (which no single-element write and no
# simple permutation/compensating rewrite can).  Producers in this repo
# still treat quantized weights as immutable —
# :attr:`QuantizedLayer.codes64` is marked read-only — the fingerprint
# is a correctness backstop, not a license to mutate.
#
# Process model (the sharded serving runtime forks workers holding this
# module): the cache is strictly process-local state, and both
# multiprocessing start methods are safe.  With ``fork`` a worker
# inherits the parent's entries copy-on-write — the owner arrays are
# duplicated at the same virtual addresses, so the (id, data pointer)
# keys and the weakrefs all still resolve in the child, and a worker
# whose compiled network was warmed during lowering starts with a hot
# cache for free.  With ``spawn`` the module is imported fresh and the
# worker rebuilds its maps on first use.  Counters are inherited under
# fork (deltas, as reported by the runtime, stay correct);
# :func:`burst_map_cache_stats` exposes the owning pid and whether the
# cache was inherited so worker provenance is observable.
# ----------------------------------------------------------------------
_BURST_MAP_CACHE_SIZE = 4096
_burst_map_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_burst_map_hits = 0
_burst_map_misses = 0
_burst_map_invalidations = 0
#: Pid that created (or last cleared) this process's cache state; a
#: forked worker sees a different ``os.getpid()`` until it clears.
_burst_map_origin_pid = os.getpid()


def _content_fingerprint(weights: np.ndarray) -> tuple:
    """Cheap content checksum: first/last element, wrap-around sum, and
    a position-weighted sum.  Two vectorised O(size) passes — far
    cheaper than recomputing the burst map.  Every single-element
    mutation moves the plain sum; permutations and compensating
    +d/-d pairs preserve the plain sum but move the position-weighted
    one (a swap of unequal values at positions i < j shifts it by
    (j - i) x (difference)), so a mutation only slips through if it
    preserves both sums and both end elements simultaneously."""
    flat = weights.reshape(-1)
    if flat.size == 0:
        return (0, 0, 0, 0)
    positions = np.arange(1, flat.size + 1, dtype=np.int64)
    return (
        int(flat[0]),
        int(flat[-1]),
        int(np.sum(flat, dtype=np.int64)),
        int(np.dot(flat, positions)),
    )


def _burst_map_key(
    weights: np.ndarray, config: CoreConfig, code: UnaryCode
) -> tuple:
    owner = weights
    while owner.base is not None and isinstance(owner.base, np.ndarray):
        owner = owner.base
    return owner, (
        id(owner),
        weights.__array_interface__["data"][0],
        weights.shape,
        weights.strides,
        str(weights.dtype),
        config.k,
        config.n,
        config.burst_overhead,
        code.name,
    )


def cached_burst_cycle_map(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> np.ndarray:
    """Memoized :func:`burst_cycle_map` keyed on the weight tensor's
    storage identity plus the array geometry and code (see cache notes
    above).

    Returns the cached map as read-only; copy before mutating.
    """
    global _burst_map_hits, _burst_map_misses, _burst_map_invalidations
    code = code if code is not None else TwosUnaryCode()
    weights = np.asarray(weights)
    owner, key = _burst_map_key(weights, config, code)
    # An own-storage read-only array cannot be mutated under the cache,
    # so skip the O(size) checksum on the hit path for the dominant
    # producers (codes64, schedule-permuted tensors — all frozen).
    immutable = weights.base is None and not weights.flags.writeable
    fingerprint = None if immutable else _content_fingerprint(weights)
    entry = _burst_map_cache.get(key)
    if entry is not None and entry[0]() is owner:
        if fingerprint is None or entry[2] == fingerprint:
            _burst_map_cache.move_to_end(key)
            _burst_map_hits += 1
            return entry[1]
        # The cached tensor was mutated in place under the cache: drop
        # the stale map and fall through to a recompute.
        del _burst_map_cache[key]
        _burst_map_invalidations += 1
    cycles = burst_cycle_map(weights, config, code)
    cycles.setflags(write=False)
    try:
        owner_ref = weakref.ref(owner)
    except TypeError:
        # Some ndarray subclasses reject weakrefs; skip caching for them.
        return cycles
    # Always store the checksum (the miss already pays an O(size) map
    # computation): if the tensor is ever made writable and mutated,
    # later lookups still catch it.
    if fingerprint is None:
        fingerprint = _content_fingerprint(weights)
    _burst_map_cache[key] = (owner_ref, cycles, fingerprint)
    _burst_map_cache.move_to_end(key)
    _burst_map_misses += 1
    while len(_burst_map_cache) > _BURST_MAP_CACHE_SIZE:
        _burst_map_cache.popitem(last=False)
    return cycles


def burst_map_cache_stats() -> dict:
    """Hit/miss counters (observability for the profiling passes and
    the serving workers).  ``inherited`` flags a cache carried across a
    ``fork`` from a parent process (see the process-model notes above)."""
    return {
        "hits": _burst_map_hits,
        "misses": _burst_map_misses,
        "invalidations": _burst_map_invalidations,
        "entries": len(_burst_map_cache),
        "pid": os.getpid(),
        "inherited": os.getpid() != _burst_map_origin_pid,
    }


def clear_burst_map_cache() -> None:
    """Drop all cached maps and reset the counters (and claim the
    cache for the current process)."""
    global _burst_map_hits, _burst_map_misses, _burst_map_invalidations
    global _burst_map_origin_pid
    _burst_map_cache.clear()
    _burst_map_hits = 0
    _burst_map_misses = 0
    _burst_map_invalidations = 0
    _burst_map_origin_pid = os.getpid()


def layer_burst_cycles(
    shape: ConvShape,
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> int:
    """Total PCU compute cycles for one layer: every burst repeats for every
    output pixel."""
    per_pixel = int(cached_burst_cycle_map(weights, config, code).sum())
    return per_pixel * shape.output_pixels


def average_burst_cycles(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> float:
    """Mean burst length across a weight tensor's tiles — the paper's
    "workload-dependent latency" statistic (33 cycles for MobileNetV2,
    31 for ResNeXt101 at 16x16 INT8)."""
    cycles = cached_burst_cycle_map(weights, config, code)
    return float(cycles.mean())


def tile_zero_lane_counts(
    weights: np.ndarray, k: int, n: int
) -> np.ndarray:
    """Zero-weight lanes per (group, channel-block, ky, kx) tile —
    including the zero padding for kernels/channels beyond the tensor
    edge, exactly as the PCU sees each atom.  Silent-lane cycles for a
    layer are ``(counts * effective_burst).sum() * output_pixels``."""
    tiled = _tiled_view(weights, k, n)
    return (tiled == 0).sum(axis=(1, 3))


def tile_idle_cell_counts(
    weights: np.ndarray, k: int, n: int
) -> np.ndarray:
    """All-zero weight rows (clock-gateable MAC cells) per tile — the
    binary CMAC's gating statistic: ``counts.sum() * output_pixels`` is
    the layer's ``gated_cell_cycles``."""
    tiled = _tiled_view(weights, k, n)
    return (~tiled.any(axis=3)).sum(axis=1)
