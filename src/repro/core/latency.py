"""Analytic latency model for Tempus Core.

The number of compute cycles for a k x n array burst is determined by the
largest weight magnitude present in the array (Sec. III); this module
computes burst maps and layer totals vectorised, which is what makes
whole-CNN profiling (Figs. 7/8, Sec. V-C) fast.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DataflowError
from repro.nvdla.config import CoreConfig
from repro.nvdla.dataflow import ConvShape
from repro.unary.encoding import TwosUnaryCode, UnaryCode
from repro.utils.intrange import IntSpec


def worst_case_cycles(
    precision: IntSpec, code: UnaryCode | None = None
) -> int:
    """Worst-case burst length for a precision: INT8 -> 64, INT4 -> 4,
    INT2 -> 1 (2s-unary)."""
    code = code if code is not None else TwosUnaryCode()
    return code.cycles_for_magnitude(precision.max_magnitude)


def tile_max_magnitudes(
    weights: np.ndarray, k: int, n: int
) -> np.ndarray:
    """Largest |weight| per (group, channel-block, ky, kx) tile.

    Args:
        weights: (K, C, R, S) integer weights.
        k / n: array geometry (kernels per group / channels per block).

    Returns:
        int64 array of shape (groups, channel_blocks, R, S).
    """
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise DataflowError("expected (K, C, R, S) weights")
    kernels, channels, kernel_h, kernel_w = weights.shape
    groups = math.ceil(kernels / k)
    blocks = math.ceil(channels / n)
    padded = np.zeros(
        (groups * k, blocks * n, kernel_h, kernel_w), dtype=np.int64
    )
    padded[:kernels, :channels] = np.abs(weights.astype(np.int64))
    tiled = padded.reshape(groups, k, blocks, n, kernel_h, kernel_w)
    return tiled.max(axis=(1, 3))


def burst_cycle_map(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> np.ndarray:
    """Burst length of every (group, channel-block, ky, kx) tile,
    including the minimum 1 cycle for all-zero tiles and the PCU's
    cache-in/out overhead."""
    code = code if code is not None else TwosUnaryCode()
    maxima = tile_max_magnitudes(weights, config.k, config.n)
    cycles = code.cycles_array(maxima)
    return np.maximum(cycles, 1) + config.burst_overhead


def layer_burst_cycles(
    shape: ConvShape,
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> int:
    """Total PCU compute cycles for one layer: every burst repeats for every
    output pixel."""
    per_pixel = int(burst_cycle_map(weights, config, code).sum())
    return per_pixel * shape.output_pixels


def average_burst_cycles(
    weights: np.ndarray,
    config: CoreConfig,
    code: UnaryCode | None = None,
) -> float:
    """Mean burst length across a weight tensor's tiles — the paper's
    "workload-dependent latency" statistic (33 cycles for MobileNetV2,
    31 for ResNeXt101 at 16x16 INT8)."""
    cycles = burst_cycle_map(weights, config, code)
    return float(cycles.mean())
