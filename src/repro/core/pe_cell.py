"""Tub PE cell: n tub lanes + shared adder tree + cell accumulator.

Each cycle the cell sums its n lane contributions through the adder tree
and accumulates the result; after ``ceil(max_i |w_i| / 2)`` cycles the
accumulator holds the exact n-lane dot product.  Lanes with zero weights
are *silent* for the whole burst (the sparsity lever of Sec. V-C).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.core.tub_multiplier import TubMultiplier
from repro.unary.encoding import TwosUnaryCode, UnaryCode


class TubPeCell:
    """Cycle-accurate tub PE cell (one of the k cells in a PCU)."""

    def __init__(self, n: int, code: UnaryCode | None = None) -> None:
        if n < 1:
            raise SimulationError(f"PE cell needs n >= 1 lanes, got {n}")
        self.n = n
        self.code = code if code is not None else TwosUnaryCode()
        self.lanes = [TubMultiplier(self.code) for _ in range(n)]
        self._accumulator = 0
        self._burst_cycles = 0
        self._loaded = False

    def load_atom(self, feature: np.ndarray, weights: np.ndarray) -> int:
        """Latch one feature atom against this cell's weight atom.

        Returns:
            the burst length this cell needs (max over lanes).
        """
        feature = np.asarray(feature, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if feature.shape != (self.n,) or weights.shape != (self.n,):
            raise SimulationError(
                f"atom shapes {feature.shape}/{weights.shape} != ({self.n},)"
            )
        self._accumulator = 0
        self._loaded = True
        self._burst_cycles = 0
        for lane, act, weight in zip(self.lanes, feature, weights):
            self._burst_cycles = max(
                self._burst_cycles, lane.load(int(act), int(weight))
            )
        return self._burst_cycles

    @property
    def busy(self) -> bool:
        return any(lane.busy for lane in self.lanes)

    @property
    def partial_sum(self) -> int:
        """The accumulated dot product (valid once the burst completes)."""
        return self._accumulator

    @property
    def silent_lanes(self) -> int:
        """Lanes holding a zero weight in the current atom."""
        if not self._loaded:
            return 0
        return sum(1 for lane in self.lanes if lane.is_silent)

    def tick(self) -> int:
        """One burst cycle: adder tree over lane contributions, then
        accumulate.  Returns this cycle's tree output."""
        if not self._loaded:
            raise SimulationError("PE cell ticked before load_atom()")
        tree_sum = 0
        for lane in self.lanes:
            if lane.busy:
                tree_sum += lane.tick()
        self._accumulator += tree_sum
        return tree_sum

    def run_burst(self) -> tuple[int, int]:
        """Run the whole burst; returns (partial_sum, cycles)."""
        cycles = 0
        while self.busy:
            self.tick()
            cycles += 1
        return self._accumulator, cycles
