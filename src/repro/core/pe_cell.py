"""Tub PE cell: n tub lanes + shared adder tree + cell accumulator.

Each cycle the cell sums its n lane contributions through the adder tree
and accumulates the result; after ``ceil(max_i |w_i| / 2)`` cycles the
accumulator holds the exact n-lane dot product.  Lanes with zero weights
are *silent* for the whole burst (the sparsity lever of Sec. V-C).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.core.tub_multiplier import TubLaneBlock, TubMultiplier
from repro.unary.encoding import TwosUnaryCode, UnaryCode


class TubPeCell:
    """Cycle-accurate tub PE cell (one of the k cells in a PCU)."""

    def __init__(self, n: int, code: UnaryCode | None = None) -> None:
        if n < 1:
            raise SimulationError(f"PE cell needs n >= 1 lanes, got {n}")
        self.n = n
        self.code = code if code is not None else TwosUnaryCode()
        self.lanes = [TubMultiplier(self.code) for _ in range(n)]
        self._accumulator = 0
        self._burst_cycles = 0
        self._loaded = False

    def load_atom(self, feature: np.ndarray, weights: np.ndarray) -> int:
        """Latch one feature atom against this cell's weight atom.

        Returns:
            the burst length this cell needs (max over lanes).
        """
        feature = np.asarray(feature, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if feature.shape != (self.n,) or weights.shape != (self.n,):
            raise SimulationError(
                f"atom shapes {feature.shape}/{weights.shape} != ({self.n},)"
            )
        self._accumulator = 0
        self._loaded = True
        self._burst_cycles = 0
        for lane, act, weight in zip(self.lanes, feature, weights):
            self._burst_cycles = max(
                self._burst_cycles, lane.load(int(act), int(weight))
            )
        return self._burst_cycles

    @property
    def busy(self) -> bool:
        return any(lane.busy for lane in self.lanes)

    @property
    def partial_sum(self) -> int:
        """The accumulated dot product (valid once the burst completes)."""
        return self._accumulator

    @property
    def silent_lanes(self) -> int:
        """Lanes holding a zero weight in the current atom."""
        if not self._loaded:
            return 0
        return sum(1 for lane in self.lanes if lane.is_silent)

    def tick(self) -> int:
        """One burst cycle: adder tree over lane contributions, then
        accumulate.  Returns this cycle's tree output."""
        if not self._loaded:
            raise SimulationError("PE cell ticked before load_atom()")
        tree_sum = 0
        for lane in self.lanes:
            if lane.busy:
                tree_sum += lane.tick()
        self._accumulator += tree_sum
        return tree_sum

    def run_burst(self) -> tuple[int, int]:
        """Run the whole burst; returns (partial_sum, cycles)."""
        cycles = 0
        while self.busy:
            self.tick()
            cycles += 1
        return self._accumulator, cycles


class TubCellBlock:
    """All k PE cells of a PCU as one vectorized (k, n) lane-state array.

    The batch companion to :class:`TubPeCell`: one :meth:`load_block` /
    :meth:`run_burst_vec` pair executes a whole k x n atom — every cell's
    adder tree and accumulator — as a handful of NumPy reductions instead
    of ``burst x k x n`` interpreter ticks.  State and results are
    bit-identical to k lockstepped :class:`TubPeCell` instances.
    """

    def __init__(self, k: int, n: int, code: UnaryCode | None = None) -> None:
        if k < 1 or n < 1:
            raise SimulationError(f"cell block needs k, n >= 1, got {k}x{n}")
        self.k = k
        self.n = n
        self.code = code if code is not None else TwosUnaryCode()
        self.lanes = TubLaneBlock((k, n), self.code)
        self._burst_cycles = 0
        self._loaded = False

    def load_block(
        self, feature: np.ndarray, weight_block: np.ndarray
    ) -> int:
        """Latch one feature atom against all k weight atoms.

        The feature row is broadcast across the k cells (the PCU holds the
        transposed feature column stable for the whole burst).

        Returns:
            the burst length of the whole tile (max over all k x n lanes).
        """
        feature = np.asarray(feature, dtype=np.int64)
        weight_block = np.asarray(weight_block, dtype=np.int64)
        if feature.shape != (self.n,) or weight_block.shape != (
            self.k,
            self.n,
        ):
            raise SimulationError(
                f"atom shapes {feature.shape}/{weight_block.shape} != "
                f"({self.n},)/({self.k}, {self.n})"
            )
        lane_cycles = self.lanes.load_block(
            np.broadcast_to(feature, (self.k, self.n)), weight_block
        )
        self._burst_cycles = int(lane_cycles.max(initial=0))
        self._loaded = True
        return self._burst_cycles

    @property
    def busy(self) -> bool:
        return self.lanes.busy

    @property
    def partial_sums(self) -> np.ndarray:
        """(k,) accumulated dot products (exact once the burst completes)."""
        return self.lanes.products.sum(axis=1)

    @property
    def silent_lanes(self) -> int:
        """Zero-weight lanes across the whole tile (the gating statistic)."""
        if not self._loaded:
            return 0
        return int(self.lanes.silent_mask.sum())

    def step_vec(self, cycles: int = 1) -> np.ndarray:
        """Advance every cell ``cycles`` edges; returns the (k,) adder-tree
        outputs summed over the jump."""
        if not self._loaded:
            raise SimulationError("cell block stepped before load_block()")
        return self.lanes.step_vec(cycles).sum(axis=1)

    def run_burst_vec(self) -> tuple[np.ndarray, int]:
        """Run the whole burst; returns ((k,) partial sums, cycles)."""
        if not self._loaded:
            raise SimulationError("cell block run before load_block()")
        products, burst = self.lanes.run_burst_vec()
        return products.sum(axis=1), burst
