"""Netlist builders for the Tempus (tub) datapath.

Mirrors :mod:`repro.nvdla.hwmodel` at the same three granularities:

* :func:`tub_pe_cell_netlist` — one tub PE cell: per-lane weight registers
  (doubling as the 2s-unary down-counters), temporal-encoder pulse logic,
  operand gating (0 / a / a<<1 select with sign conditioning), the shared
  contribution adder tree and the cell accumulator.  No array multiplier
  anywhere — the source of the area/power advantage.
* :func:`tub_array_netlist` — k cells + feature broadcast (Fig. 4).
* :func:`pcu_unit_netlist` — the full PCU with feature-hold registers,
  burst control, output registers and the added handshake (Fig. 5 /
  Table III).

Activity notes: during a burst the count registers decrement and the cell
accumulator updates *every cycle*, so their toggle rates are high — this is
why the PCU's power advantage is structurally smaller than its area
advantage, the paper's Fig. 5 observation.
"""

from __future__ import annotations

import math

from repro.hw.adder_tree import adder_tree
from repro.hw.components import (
    and_bank,
    broadcast_buffers,
    clock_gate,
    handshake_controller,
    mux2_bank,
    nonzero_detector,
    register_bank,
    ripple_carry_adder,
    twos_unary_encoder,
    xor_bank,
)
from repro.hw.netlist import Netlist
from repro.nvdla.hwmodel import accumulator_width
from repro.utils.intrange import IntSpec, int_spec

# Toggle-rate calibration for the tub datapath.
COUNT_REG_ACTIVITY = 0.35  # weight registers decrement during the burst
ENCODER_ACTIVITY = 0.20
GATE_ACTIVITY = 0.08  # operand gates switch only on pulse boundaries
TREE_ACTIVITY = 0.08  # pulse tree sees sparse, short operands
ACC_ADDER_ACTIVITY = 0.30
ACC_REG_ACTIVITY = 0.40  # accumulator updates every burst cycle
FEATURE_REG_ACTIVITY = 0.05  # feature atom held stable across the burst
OUTPUT_REG_ACTIVITY = 0.05  # psums latched once per burst


def contribution_width(precision: IntSpec) -> int:
    """Per-lane, per-cycle contribution width: +/- 2 * activation needs
    precision.width + 2 bits."""
    return precision.width + 2


def lane_gate_netlist(precision: IntSpec, name: str = "lane_gate") -> Netlist:
    """Operand gating of one tub lane: select {0, a, a<<1} (the shift is
    wiring) and apply the stream sign."""
    width = contribution_width(precision)
    gate = Netlist(name, activity=GATE_ACTIVITY)
    gate.add_child(mux2_bank(width, name="shift_sel"))
    gate.add_child(and_bank(width, name="pulse_en"))
    gate.add_child(xor_bank(width, name="sign_cond"))
    gate.depth_ps = sum(child.depth_ps for child, _ in gate.children)
    return gate


def tub_pe_cell_netlist(
    precision: "int | str | IntSpec", n: int, name: str = "tub_pe_cell"
) -> Netlist:
    """One tub PE cell (n lanes + shared tree + accumulator)."""
    spec = int_spec(precision)
    width = spec.width
    acc_bits = accumulator_width(spec, n)
    cell = Netlist(name)
    # Weight registers double as the 2s-unary down-counters.
    cell.add_child(
        register_bank(n * width, "count_regs", COUNT_REG_ACTIVITY)
    )
    encoder = twos_unary_encoder(width, name="tu_enc")
    encoder.activity = ENCODER_ACTIVITY
    cell.add_child(encoder, n)
    cell.add_child(lane_gate_netlist(spec), n)
    cell.add_child(
        adder_tree(
            n,
            contribution_width(spec),
            name="pulse_tree",
            activity=TREE_ACTIVITY,
        )
    )
    accumulator = Netlist("cell_acc", activity=ACC_ADDER_ACTIVITY)
    accumulator.add_child(ripple_carry_adder(acc_bits, name="acc_add"))
    accumulator.add_child(
        register_bank(acc_bits, "acc_reg", ACC_REG_ACTIVITY)
    )
    cell.add_child(accumulator)
    return cell


def tub_array_netlist(
    k: int,
    n: int,
    precision: "int | str | IntSpec",
    name: str = "tub_array",
) -> Netlist:
    """k x n tub PE array: k cells plus the feature broadcast fabric."""
    spec = int_spec(precision)
    array = Netlist(name)
    cell = tub_pe_cell_netlist(spec, n, name="pe_cell")
    array.add_child(cell, k)
    array.add_child(broadcast_buffers(n * spec.width, k, name="bcast"))
    array.connect("bcast", "pe_cell", n * spec.width)
    array.connect("pe_cell", "TOP", accumulator_width(spec, n))
    return array


def burst_controller_netlist(
    precision: IntSpec, name: str = "burst_ctrl"
) -> Netlist:
    """PCU burst sequencing: a cycle counter as wide as the worst-case
    burst plus completion detection."""
    counter_bits = max(1, precision.worst_case_tub_cycles.bit_length())
    block = Netlist(name, activity=0.30, reg_activity=0.35)
    block.add_child(register_bank(counter_bits, "count"))
    block.add_child(ripple_carry_adder(counter_bits, name="step"))
    block.add_child(nonzero_detector(counter_bits, name="done"))
    return block


def pcu_unit_netlist(
    k: int,
    n: int,
    precision: "int | str | IntSpec",
    name: str = "pcu_unit",
) -> Netlist:
    """The complete PCU: array + feature-hold registers + burst control +
    output registers + the added multi-cycle handshake."""
    spec = int_spec(precision)
    acc_bits = accumulator_width(spec, n)
    unit = Netlist(name)
    cell = tub_pe_cell_netlist(spec, n, name="pe_cell")
    unit.add_child(cell, k)
    unit.add_child(
        register_bank(n * spec.width, "feature_regs", FEATURE_REG_ACTIVITY)
    )
    unit.add_child(broadcast_buffers(n * spec.width, k, name="bcast"))
    unit.add_child(
        register_bank(k * acc_bits, "output_regs", OUTPUT_REG_ACTIVITY)
    )
    unit.add_child(burst_controller_netlist(spec))
    unit.add_child(handshake_controller("handshake"))
    unit.add_child(clock_gate("cell_cg"), k)
    unit.connect("feature_regs", "bcast", n * spec.width)
    unit.connect("bcast", "pe_cell", n * spec.width)
    unit.connect("pe_cell", "output_regs", acc_bits)
    unit.connect("output_regs", "TOP", k * acc_bits)
    unit.connect("burst_ctrl", "pe_cell", 2)
    unit.connect("handshake", "burst_ctrl", 4)
    return unit
