"""Tempus Core: the drop-in tub convolution engine.

Same public API as :class:`repro.nvdla.conv_core.ConvolutionCore` — same
inputs, bit-identical outputs, different latency/energy profile.  The
``fast`` mode computes the exact output with NumPy and the cycle count with
the analytic burst model; the ``cycle`` mode runs the full handshaked
CSC -> PCU -> CACC simulation (tests assert both agree exactly).
"""

from __future__ import annotations

import numpy as np

from repro.core.csc import TempusSequenceController
from repro.core.latency import layer_burst_cycles
from repro.core.pcu import PcuUnit
from repro.errors import DataflowError
from repro.nvdla.cacc import CaccUnit
from repro.nvdla.cbuf import ConvBuffer
from repro.nvdla.config import CoreConfig
from repro.nvdla.conv_core import ConvResult
from repro.nvdla.dataflow import ConvShape, golden_conv2d, validate_layer
from repro.sim.handshake import ValidReadyChannel
from repro.sim.kernel import CycleSimulator
from repro.unary.encoding import TwosUnaryCode, UnaryCode


class TempusCore:
    """The temporal-unary-binary convolution engine."""

    def __init__(
        self,
        config: CoreConfig | None = None,
        mode: str = "fast",
        code: UnaryCode | None = None,
        cbuf: ConvBuffer | None = None,
    ) -> None:
        """Args:
        config: array geometry/precision (defaults to 16x16 INT8).
        mode: "fast" or "cycle" (see module docstring).
        code: unary code for weight streams (default 2s-unary).
        cbuf: optional pre-built convolution buffer.
        """
        if mode not in ("fast", "cycle"):
            raise DataflowError(f"unknown mode {mode!r}")
        self.config = config if config is not None else CoreConfig()
        self.mode = mode
        self.code = code if code is not None else TwosUnaryCode()
        self.cbuf = cbuf if cbuf is not None else ConvBuffer()

    def _shape_for(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        stride: int,
        padding: int,
    ) -> ConvShape:
        channels, height, width = activations.shape
        kernels, _, kernel_h, kernel_w = weights.shape
        return ConvShape(
            in_channels=channels,
            in_height=height,
            in_width=width,
            out_channels=kernels,
            kernel_h=kernel_h,
            kernel_w=kernel_w,
            stride=stride,
            padding=padding,
        )

    def schedule_atoms(self, shape: ConvShape) -> int:
        return (
            shape.kernel_groups(self.config.k)
            * shape.output_pixels
            * shape.atoms_per_pixel(self.config.n)
        )

    def analytic_cycles(self, shape: ConvShape, weights: np.ndarray) -> int:
        """Tempus latency: sum of per-atom burst lengths plus pipeline
        fill/drain (one issue cycle + one output-register stage)."""
        bursts = layer_burst_cycles(shape, weights, self.config, self.code)
        return bursts + self.config.pipeline_latency + 1

    def run_layer(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> ConvResult:
        """Run one convolution layer (same contract as the binary core)."""
        activations = np.asarray(activations)
        weights = np.asarray(weights)
        if activations.ndim != 3 or weights.ndim != 4:
            raise DataflowError(
                "expected (C,H,W) activations and (K,C,R,S) weights"
            )
        shape = self._shape_for(activations, weights, stride, padding)
        activations, weights = validate_layer(
            shape, activations, weights, self.config.precision
        )
        if self.mode == "fast":
            return self._run_fast(shape, activations, weights)
        return self._run_cycle(shape, activations, weights)

    def _run_fast(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
    ) -> ConvResult:
        output = golden_conv2d(
            activations, weights, shape.stride, shape.padding
        )
        return ConvResult(
            output=output,
            cycles=self.analytic_cycles(shape, weights),
            atoms=self.schedule_atoms(shape),
            macs=shape.macs,
        )

    def _run_cycle(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
    ) -> ConvResult:
        self.cbuf.load_layer(
            shape, activations, weights, self.config.precision
        )
        csc_to_pcu: ValidReadyChannel = ValidReadyChannel("csc->pcu")
        pcu_to_acc: ValidReadyChannel = ValidReadyChannel("pcu->cacc")
        csc = TempusSequenceController(
            self.config, shape, self.cbuf, csc_to_pcu, code=self.code
        )
        pcu = PcuUnit(self.config, csc_to_pcu, pcu_to_acc, code=self.code)
        cacc = CaccUnit(self.config, shape, pcu_to_acc)
        sim = CycleSimulator([csc, pcu, cacc])
        sim.reset()
        worst = self.config.precision.worst_case_tub_cycles
        atoms = self.schedule_atoms(shape)
        budget = atoms * (worst + self.config.burst_overhead + 2) + 64
        sim.run_until(
            lambda: cacc.finished and not pcu_to_acc.valid,
            max_cycles=budget,
        )
        return ConvResult(
            output=cacc.output,
            cycles=sim.cycle,
            atoms=atoms,
            macs=shape.macs,
            gated_cell_cycles=pcu.silent_lane_cycles,
        )
