"""Tempus Core: the drop-in tub convolution engine.

Same public API as :class:`repro.nvdla.conv_core.ConvolutionCore` — same
inputs, bit-identical outputs, different latency/energy profile.  Three
execution modes:

* ``fast`` — exact NumPy output plus the analytic burst-cycle model; no
  per-atom simulation at all.  Use for whole-CNN profiling where only
  totals matter.
* ``cycle`` — tick-level handshaked CSC -> PCU -> CACC simulation: every
  clock edge ticks every lane.  O(cycles x k x n) interpreter work; use
  only for waveform rendering (:class:`~repro.core.tub_multiplier.TubTrace`
  style) and handshake/protocol tests.
* ``burst`` — the vectorized burst-level engine: the same handshaked
  pipeline, but the PCU executes each k x n atom as one closed-form NumPy
  burst (:class:`~repro.core.pcu.VectorPcuUnit`) and the simulator jumps
  the clock by the burst span (:meth:`CycleSimulator.run_events`).
  Output, cycles, atoms and gated_cell_cycles are bit-identical to
  ``cycle`` at NumPy speed (50x+ on 16x16 INT8 layers) — the default
  choice whenever per-burst statistics are wanted.

Tests assert all three modes agree exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.csc import TempusSequenceController
from repro.core.latency import layer_burst_cycles
from repro.core.pcu import PcuUnit, VectorPcuUnit
from repro.errors import DataflowError
from repro.nvdla.cacc import CaccUnit
from repro.nvdla.cbuf import ConvBuffer
from repro.nvdla.config import CoreConfig
from repro.nvdla.conv_core import ConvResult
from repro.nvdla.dataflow import ConvShape, golden_conv2d, validate_layer
from repro.sim.handshake import ValidReadyChannel
from repro.sim.kernel import CycleSimulator
from repro.unary.encoding import TwosUnaryCode, UnaryCode


class TempusCore:
    """The temporal-unary-binary convolution engine."""

    def __init__(
        self,
        config: CoreConfig | None = None,
        mode: str = "fast",
        code: UnaryCode | None = None,
        cbuf: ConvBuffer | None = None,
    ) -> None:
        """Args:
        config: array geometry/precision (defaults to 16x16 INT8).
        mode: "fast", "cycle" or "burst" (see module docstring).
        code: unary code for weight streams (default 2s-unary).
        cbuf: optional pre-built convolution buffer.
        """
        if mode not in ("fast", "cycle", "burst"):
            raise DataflowError(f"unknown mode {mode!r}")
        self.config = config if config is not None else CoreConfig()
        self.mode = mode
        self.code = code if code is not None else TwosUnaryCode()
        self.cbuf = cbuf if cbuf is not None else ConvBuffer()

    def _shape_for(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        stride: int,
        padding: int,
    ) -> ConvShape:
        channels, height, width = activations.shape
        kernels, _, kernel_h, kernel_w = weights.shape
        return ConvShape(
            in_channels=channels,
            in_height=height,
            in_width=width,
            out_channels=kernels,
            kernel_h=kernel_h,
            kernel_w=kernel_w,
            stride=stride,
            padding=padding,
        )

    def schedule_atoms(self, shape: ConvShape) -> int:
        return (
            shape.kernel_groups(self.config.k)
            * shape.output_pixels
            * shape.atoms_per_pixel(self.config.n)
        )

    def analytic_cycles(self, shape: ConvShape, weights: np.ndarray) -> int:
        """Tempus latency: sum of per-atom burst lengths plus pipeline
        fill/drain (one issue cycle + one output-register stage)."""
        bursts = layer_burst_cycles(shape, weights, self.config, self.code)
        return bursts + self.config.pipeline_latency + 1

    def run_layer(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> ConvResult:
        """Run one convolution layer (same contract as the binary core)."""
        activations = np.asarray(activations)
        weights = np.asarray(weights)
        if activations.ndim != 3 or weights.ndim != 4:
            raise DataflowError(
                "expected (C,H,W) activations and (K,C,R,S) weights"
            )
        shape = self._shape_for(activations, weights, stride, padding)
        activations, weights = validate_layer(
            shape, activations, weights, self.config.precision
        )
        if self.mode == "fast":
            return self._run_fast(shape, activations, weights)
        if self.mode == "burst":
            return self._run_burst(shape, activations, weights)
        return self._run_cycle(shape, activations, weights)

    def _run_fast(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
    ) -> ConvResult:
        output = golden_conv2d(
            activations, weights, shape.stride, shape.padding
        )
        return ConvResult(
            output=output,
            cycles=self.analytic_cycles(shape, weights),
            atoms=self.schedule_atoms(shape),
            macs=shape.macs,
        )

    def _run_burst(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
    ) -> ConvResult:
        """The vectorized burst-level engine: same pipeline as ``cycle``,
        one event per atom, clock jumps of a whole burst at a time."""
        return self._run_sim(shape, activations, weights, vectorized=True)

    def _run_cycle(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
    ) -> ConvResult:
        return self._run_sim(shape, activations, weights, vectorized=False)

    def _run_sim(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
        vectorized: bool,
    ) -> ConvResult:
        self.cbuf.load_layer(
            shape, activations, weights, self.config.precision
        )
        csc_to_pcu: ValidReadyChannel = ValidReadyChannel("csc->pcu")
        pcu_to_acc: ValidReadyChannel = ValidReadyChannel("pcu->cacc")
        csc = TempusSequenceController(
            self.config, shape, self.cbuf, csc_to_pcu, code=self.code
        )
        pcu_cls = VectorPcuUnit if vectorized else PcuUnit
        pcu = pcu_cls(self.config, csc_to_pcu, pcu_to_acc, code=self.code)
        cacc = CaccUnit(self.config, shape, pcu_to_acc)
        sim = CycleSimulator([csc, pcu, cacc])
        sim.reset()
        # Deadlock budget: worst burst of the *configured code* (pure
        # unary streams twice as long as 2s-unary) plus per-atom slack.
        worst = self.code.cycles_for_magnitude(
            self.config.precision.max_magnitude
        )
        atoms = self.schedule_atoms(shape)
        budget = atoms * (worst + self.config.burst_overhead + 2) + 64
        done = lambda: cacc.finished and not pcu_to_acc.valid  # noqa: E731
        if vectorized:
            sim.run_events(
                done, span=lambda: pcu.last_span, max_cycles=budget
            )
        else:
            sim.run_until(done, max_cycles=budget)
        return ConvResult(
            output=cacc.output,
            cycles=sim.cycle,
            atoms=atoms,
            macs=shape.macs,
            gated_cell_cycles=pcu.silent_lane_cycles,
        )
