"""Tempus Core: the paper's temporal-unary-binary convolution engine.

A drop-in replacement for NVDLA's Convolution Core: the modified CSC
(:mod:`repro.core.csc`) feeds transposed feature atoms, the PCU
(:mod:`repro.core.pcu`) executes each atom as a multi-cycle tub burst on a
k x n array of tub multipliers (:mod:`repro.core.tub_multiplier`,
:mod:`repro.core.pe_cell`), and the unmodified CACC accumulates partial
sums.  :class:`repro.core.tempus_core.TempusCore` exposes the same
``run_layer`` API as :class:`repro.nvdla.conv_core.ConvolutionCore` and
produces bit-identical outputs.
"""

from repro.core.latency import (
    burst_cycle_map,
    cached_burst_cycle_map,
    layer_burst_cycles,
    worst_case_cycles,
)
from repro.core.pe_cell import TubCellBlock, TubPeCell
from repro.core.pcu import PcuUnit, VectorPcuUnit
from repro.core.tempus_core import TempusCore
from repro.core.tub_multiplier import TubLaneBlock, TubMultiplier, tub_multiply

__all__ = [
    "TubMultiplier",
    "TubLaneBlock",
    "tub_multiply",
    "TubPeCell",
    "TubCellBlock",
    "PcuUnit",
    "VectorPcuUnit",
    "TempusCore",
    "worst_case_cycles",
    "burst_cycle_map",
    "cached_burst_cycle_map",
    "layer_burst_cycles",
]
