"""Convolution accumulator (CACC).

Sums the per-atom partial sums into output pixels.  One accumulator bank
entry per (kernel, output pixel); the bank is drained into the final output
tensor when the layer completes.  Identical for both cores — Tempus Core
reuses the CACC untouched (Fig. 3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.nvdla.cmac import PsumPacket
from repro.nvdla.config import CoreConfig
from repro.nvdla.dataflow import ConvShape
from repro.sim.handshake import ValidReadyChannel
from repro.sim.kernel import Module


class CaccUnit(Module):
    """Cycle model of the accumulator."""

    def __init__(
        self,
        config: CoreConfig,
        shape: ConvShape,
        in_channel: ValidReadyChannel,
        name: str = "cacc",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.shape = shape
        self.in_channel = in_channel
        self.output = np.zeros(
            (shape.out_channels, shape.out_height, shape.out_width),
            dtype=np.int64,
        )
        self.packets_received = 0
        self.finished = False

    def reset(self) -> None:
        self.output = np.zeros_like(self.output)
        self.packets_received = 0
        self.finished = False

    def tick(self) -> None:
        if not self.in_channel.valid:
            return
        packet: PsumPacket = self.in_channel.pop()
        kernel0 = packet.group * self.config.k
        kernels = min(self.config.k, self.shape.out_channels - kernel0)
        if kernels <= 0:
            raise SimulationError(
                f"psum packet for empty kernel group {packet.group}"
            )
        self.output[
            kernel0 : kernel0 + kernels, packet.out_y, packet.out_x
        ] += packet.psums[:kernels]
        self.packets_received += 1
        if packet.last:
            self.finished = True
