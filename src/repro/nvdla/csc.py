"""Convolution sequence controller (CSC).

Walks the atom schedule of :func:`repro.nvdla.dataflow.iter_atoms`, fetches
feature and weight atoms from the CBUF and pushes :class:`AtomJob` packets
downstream, respecting back-pressure from the MAC array.  The binary CMAC
consumes one job per cycle; Tempus Core's PCU holds the channel busy for a
whole multi-cycle burst, which stalls this same sequencer without any
schedule change — the drop-in-compatibility argument of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.nvdla.cbuf import ConvBuffer
from repro.nvdla.config import CoreConfig
from repro.nvdla.dataflow import Atom, ConvShape, iter_atoms
from repro.sim.handshake import ValidReadyChannel
from repro.sim.kernel import Module


@dataclass
class AtomJob:
    """One unit of work for the MAC array.

    Attributes:
        atom: schedule coordinates.
        feature: (n,) feature slice (zero-padded at edges).
        weight_block: (k, n) weight slice for the atom's kernel group.
        last: True for the final atom of the layer.
    """

    atom: Atom
    feature: np.ndarray
    weight_block: np.ndarray
    last: bool


class SequenceController(Module):
    """Cycle model of the CSC: one atom issued per cycle when the
    downstream channel has room."""

    def __init__(
        self,
        config: CoreConfig,
        shape: ConvShape,
        cbuf: ConvBuffer,
        out_channel: ValidReadyChannel,
        name: str = "csc",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.shape = shape
        self.cbuf = cbuf
        self.out_channel = out_channel
        self._atoms: Iterator[Atom] | None = None
        self._next_atom: Atom | None = None
        self._pending: Atom | None = None
        self.issued = 0
        self.total_atoms = (
            shape.kernel_groups(config.k)
            * shape.output_pixels
            * shape.atoms_per_pixel(config.n)
        )

    def reset(self) -> None:
        self._atoms = iter_atoms(self.shape, self.config.k, self.config.n)
        self._pending = next(self._atoms, None)
        self._next_atom = next(self._atoms, None)
        self.issued = 0

    @property
    def done(self) -> bool:
        return self._pending is None

    def _make_job(self, atom: Atom, last: bool) -> AtomJob:
        return AtomJob(
            atom=atom,
            feature=self.cbuf.fetch_feature(atom, self.config.n),
            weight_block=self.cbuf.fetch_weights(
                atom, self.config.k, self.config.n
            ),
            last=last,
        )

    def tick(self) -> None:
        if self._pending is None or not self.out_channel.ready:
            return
        job = self._make_job(self._pending, last=self._next_atom is None)
        self.out_channel.push(job)
        self.issued += 1
        self._pending = self._next_atom
        self._next_atom = (
            next(self._atoms, None) if self._atoms is not None else None
        )
