"""CBUF-aware layer tiling.

A real layer rarely fits the convolution buffer whole; NVDLA's software
stack splits it into tiles the CBUF can hold and the CSC walks tile by
tile.  This module plans such splits — along output rows (activations with
kernel-window halos) and along kernels (weight partitions) — and runs a
layer tile-wise through either core, stitching exact results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DataflowError
from repro.nvdla.cbuf import ConvBuffer
from repro.nvdla.conv_core import ConvResult
from repro.nvdla.dataflow import ConvShape
from repro.utils.intrange import IntSpec


@dataclass(frozen=True)
class LayerTile:
    """One schedulable tile of a convolution layer.

    Attributes:
        out_row0 / out_rows: output-row slice this tile produces.
        in_row0 / in_rows: input-row slice (includes the kernel halo and
            accounts for edge padding).
        kernel0 / kernels: kernel slice held in the weight banks.
        pad_top / pad_bottom: how much of the original zero padding this
            tile still needs on each vertical edge.
    """

    out_row0: int
    out_rows: int
    in_row0: int
    in_rows: int
    kernel0: int
    kernels: int
    pad_top: int
    pad_bottom: int


def _tile_bytes(
    shape: ConvShape, in_rows: int, kernels: int, precision: IntSpec
) -> tuple[int, int]:
    activation_bits = shape.in_channels * in_rows * shape.in_width \
        * precision.width
    weight_bits = (
        kernels * shape.in_channels * shape.kernel_h * shape.kernel_w
        * precision.width
    )
    return (activation_bits + 7) // 8, (weight_bits + 7) // 8


def plan_layer_tiles(
    shape: ConvShape,
    cbuf: ConvBuffer,
    precision: IntSpec,
) -> list[LayerTile]:
    """Split a layer so every tile fits the CBUF.

    Strategy: first split kernels into the largest groups whose weights fit
    half the banks, then split output rows until the haloed activation
    slice fits the rest.

    Raises:
        DataflowError: if even a single output row with one kernel cannot
            fit (the layer needs channel splitting, which this planner
            does not implement).
    """
    weight_banks_budget = cbuf.banks // 2
    kernels_per_tile = shape.out_channels
    while kernels_per_tile > 1:
        _, weight_bytes = _tile_bytes(
            shape, 1, kernels_per_tile, precision
        )
        if cbuf.banks_needed(weight_bytes) <= weight_banks_budget:
            break
        kernels_per_tile = math.ceil(kernels_per_tile / 2)

    def activation_fits(out_rows: int, kernels: int) -> bool:
        in_rows = (out_rows - 1) * shape.stride + shape.kernel_h
        act_bytes, weight_bytes = _tile_bytes(
            shape, min(in_rows, shape.in_height), kernels, precision
        )
        return (
            cbuf.banks_needed(act_bytes)
            + cbuf.banks_needed(weight_bytes)
            <= cbuf.banks
        )

    out_rows_per_tile = shape.out_height
    while out_rows_per_tile > 1 and not activation_fits(
        out_rows_per_tile, kernels_per_tile
    ):
        out_rows_per_tile = math.ceil(out_rows_per_tile / 2)
    if not activation_fits(out_rows_per_tile, kernels_per_tile):
        raise DataflowError(
            "layer cannot be tiled into the CBUF even one output row at "
            "a time; channel splitting required"
        )

    tiles = []
    for kernel0 in range(0, shape.out_channels, kernels_per_tile):
        kernels = min(kernels_per_tile, shape.out_channels - kernel0)
        for out_row0 in range(0, shape.out_height, out_rows_per_tile):
            out_rows = min(
                out_rows_per_tile, shape.out_height - out_row0
            )
            first_in = out_row0 * shape.stride - shape.padding
            last_in = (
                (out_row0 + out_rows - 1) * shape.stride
                - shape.padding
                + shape.kernel_h
                - 1
            )
            in_row0 = max(first_in, 0)
            in_row1 = min(last_in, shape.in_height - 1)
            tiles.append(
                LayerTile(
                    out_row0=out_row0,
                    out_rows=out_rows,
                    in_row0=in_row0,
                    in_rows=in_row1 - in_row0 + 1,
                    kernel0=kernel0,
                    kernels=kernels,
                    pad_top=max(-first_in, 0),
                    pad_bottom=max(last_in - (shape.in_height - 1), 0),
                )
            )
    return tiles


def run_tiled_layer(
    core,
    activations: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> ConvResult:
    """Run a layer tile-by-tile on a core whose CBUF it may not fit.

    Each tile is executed as its own (smaller) convolution with the halo
    rows supplied explicitly and residual padding applied vertically only
    where the original layer had it.  Outputs stitch exactly.
    """
    activations = np.asarray(activations, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    channels, height, width = activations.shape
    kernels, _, kernel_h, kernel_w = weights.shape
    shape = ConvShape(
        in_channels=channels,
        in_height=height,
        in_width=width,
        out_channels=kernels,
        kernel_h=kernel_h,
        kernel_w=kernel_w,
        stride=stride,
        padding=padding,
    )
    tiles = plan_layer_tiles(shape, core.cbuf, core.config.precision)
    output = np.zeros(
        (kernels, shape.out_height, shape.out_width), dtype=np.int64
    )
    total_cycles = 0
    total_atoms = 0
    for tile in tiles:
        tile_rows = activations[
            :, tile.in_row0 : tile.in_row0 + tile.in_rows, :
        ]
        # Vertical residual padding is materialised (the planner already
        # accounted for it in the halo); horizontal padding stays with the
        # core's own padding parameter.
        if tile.pad_top or tile.pad_bottom:
            tile_rows = np.pad(
                tile_rows,
                ((0, 0), (tile.pad_top, tile.pad_bottom), (0, 0)),
            )
        tile_rows = np.pad(
            tile_rows, ((0, 0), (0, 0), (padding, padding))
        )
        tile_weights = weights[tile.kernel0 : tile.kernel0 + tile.kernels]
        result = core.run_layer(
            tile_rows, tile_weights, stride=stride, padding=0
        )
        output[
            tile.kernel0 : tile.kernel0 + tile.kernels,
            tile.out_row0 : tile.out_row0 + tile.out_rows,
            :,
        ] = result.output[:, : tile.out_rows, :]
        total_cycles += result.cycles
        total_atoms += result.atoms
    return ConvResult(
        output=output,
        cycles=total_cycles,
        atoms=total_atoms,
        macs=shape.macs,
    )
