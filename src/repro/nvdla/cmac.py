"""Binary CMAC unit: k MAC cells, each with n multipliers.

Each MAC cell computes a full n-lane dot product combinationally every
cycle; the unit registers the k partial sums through one pipeline stage
(NVDLA retiming) before handing them to the CACC.  Cells whose kernel slot
is unused (kernel count not a multiple of k) are clock-gated, mirroring
NVDLA's idle-cell gating.

:class:`CmacUnit` models the unit cell by cell (one Python loop per atom);
:class:`VectorCmacUnit` computes the same atom as one (k, n) x (n,) matrix
product — the burst-level engine's baseline counterpart, bit-identical in
outputs, cycle counts and gating statistics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.nvdla.config import CoreConfig
from repro.nvdla.csc import AtomJob
from repro.sim.handshake import ValidReadyChannel
from repro.sim.kernel import Module


class BinaryMacCell:
    """One MAC cell: n multipliers + adder tree (combinational view)."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.weights = np.zeros(n, dtype=np.int64)

    def load_weights(self, weights: np.ndarray) -> None:
        if weights.shape != (self.n,):
            raise SimulationError(
                f"weight atom shape {weights.shape} != ({self.n},)"
            )
        self.weights = weights.astype(np.int64)

    @property
    def is_idle(self) -> bool:
        """All-zero weight atom — the cell contributes nothing and can be
        gated."""
        return not self.weights.any()

    def dot(self, feature: np.ndarray) -> int:
        """The cell's single-cycle partial sum."""
        if feature.shape != (self.n,):
            raise SimulationError(
                f"feature atom shape {feature.shape} != ({self.n},)"
            )
        return int(np.dot(self.weights, feature))


class PsumPacket:
    """Partial sums leaving the MAC array for one atom."""

    __slots__ = ("group", "out_y", "out_x", "psums", "last")

    def __init__(
        self,
        group: int,
        out_y: int,
        out_x: int,
        psums: np.ndarray,
        last: bool,
    ) -> None:
        self.group = group
        self.out_y = out_y
        self.out_x = out_x
        self.psums = psums
        self.last = last


class CmacUnit(Module):
    """Cycle model of the CMAC: 1 atom in, k partial sums out, 1-cycle
    pipeline."""

    def __init__(
        self,
        config: CoreConfig,
        in_channel: ValidReadyChannel,
        out_channel: ValidReadyChannel,
        name: str = "cmac",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.in_channel = in_channel
        self.out_channel = out_channel
        self.cells = [BinaryMacCell(config.n) for _ in range(config.k)]
        self._pipe: PsumPacket | None = None
        self.atoms_processed = 0
        self.gated_cell_cycles = 0
        self.active_cycles = 0

    def reset(self) -> None:
        self._pipe = None
        self.atoms_processed = 0
        self.gated_cell_cycles = 0
        self.active_cycles = 0
        for cell in self.cells:
            cell.weights = np.zeros(self.config.n, dtype=np.int64)

    def _compute(self, job: AtomJob) -> PsumPacket:
        gated = 0
        psums = np.zeros(self.config.k, dtype=np.int64)
        for index, cell in enumerate(self.cells):
            cell.load_weights(job.weight_block[index])
            if cell.is_idle:
                gated += 1
                continue
            psums[index] = cell.dot(job.feature)
        self.gated_cell_cycles += gated
        return PsumPacket(
            group=job.atom.group,
            out_y=job.atom.out_y,
            out_x=job.atom.out_x,
            psums=psums,
            last=job.last,
        )

    def tick(self) -> None:
        # Output pipeline stage drains first so a new atom can enter behind
        # it in the same cycle (full throughput of 1 atom/cycle).
        if self._pipe is not None and self.out_channel.ready:
            self.out_channel.push(self._pipe)
            self._pipe = None
        if self._pipe is None and self.in_channel.valid:
            job = self.in_channel.pop()
            self._pipe = self._compute(job)
            self.atoms_processed += 1
            self.active_cycles += 1


def vector_psums(
    feature: np.ndarray, weight_block: np.ndarray
) -> tuple[np.ndarray, int]:
    """One whole CMAC atom as a single matrix product.

    Returns:
        ((k,) partial sums with idle cells zeroed, idle cell count) —
        exactly what k :class:`BinaryMacCell` instances produce one dot at
        a time.
    """
    weight_block = np.asarray(weight_block, dtype=np.int64)
    feature = np.asarray(feature, dtype=np.int64)
    idle = ~weight_block.any(axis=1)
    psums = weight_block @ feature
    psums[idle] = 0
    return psums, int(idle.sum())


class VectorCmacUnit(Module):
    """Vectorized cycle model of the CMAC: identical 1-atom/cycle timing,
    but each atom's k dot products execute as one NumPy matrix product.

    Exposes :attr:`last_span` (always 1 — every binary atom is one cycle)
    so it can drive :meth:`CycleSimulator.run_events` interchangeably with
    the multi-cycle :class:`~repro.core.pcu.VectorPcuUnit`.
    """

    def __init__(
        self,
        config: CoreConfig,
        in_channel: ValidReadyChannel,
        out_channel: ValidReadyChannel,
        name: str = "cmac-vec",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.in_channel = in_channel
        self.out_channel = out_channel
        self._pipe: PsumPacket | None = None
        self.last_span = 1
        self.atoms_processed = 0
        self.gated_cell_cycles = 0
        self.active_cycles = 0

    def reset(self) -> None:
        self._pipe = None
        self.last_span = 1
        self.atoms_processed = 0
        self.gated_cell_cycles = 0
        self.active_cycles = 0

    def tick(self) -> None:
        if self._pipe is not None and self.out_channel.ready:
            self.out_channel.push(self._pipe)
            self._pipe = None
        if self._pipe is None and self.in_channel.valid:
            job = self.in_channel.pop()
            psums, idle = vector_psums(job.feature, job.weight_block)
            self.gated_cell_cycles += idle
            self._pipe = PsumPacket(
                group=job.atom.group,
                out_y=job.atom.out_y,
                out_x=job.atom.out_x,
                psums=psums,
                last=job.last,
            )
            self.atoms_processed += 1
            self.active_cycles += 1
        self.last_span = 1
