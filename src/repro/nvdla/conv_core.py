"""NVDLA Convolution Core (CC): CSC + CMAC + CACC.

Three execution paths with identical results:

* ``mode="cycle"`` — full handshaked cycle simulation (CBUF, sequencer, MAC
  array, accumulator) with the cell-by-cell CMAC, used for protocol tests.
* ``mode="burst"`` — the same handshaked pipeline driven by the vectorized
  :class:`~repro.nvdla.cmac.VectorCmacUnit` (one matrix product per atom);
  bit-identical outputs, cycles and gating stats at NumPy speed — the fair
  baseline for Tempus Core's burst engine.
* ``mode="fast"`` — vectorised NumPy output plus an analytic cycle count
  (one atom per cycle + pipeline fill), used for whole-CNN profiling.

The analytic count is exact for the binary core because the CMAC sustains
one atom per cycle with no stalls; tests assert cycle-vs-fast agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataflowError
from repro.nvdla.cacc import CaccUnit
from repro.nvdla.cbuf import ConvBuffer
from repro.nvdla.cmac import CmacUnit, VectorCmacUnit
from repro.nvdla.config import CoreConfig
from repro.nvdla.csc import SequenceController
from repro.nvdla.dataflow import ConvShape, golden_conv2d, validate_layer
from repro.sim.handshake import ValidReadyChannel
from repro.sim.kernel import CycleSimulator


@dataclass(frozen=True)
class ConvResult:
    """Output of one convolution layer run.

    Attributes:
        output: (K, OH, OW) exact integer output.
        cycles: total cycles from first issue to last accumulate.
        atoms: atoms scheduled (pipeline work items).
        macs: useful multiply-accumulates in the layer.
        gated_cell_cycles: clock-gated (idle) cell-cycles observed.
    """

    output: np.ndarray
    cycles: int
    atoms: int
    macs: int
    gated_cell_cycles: int = 0

    @property
    def pe_utilization(self) -> float:
        """Useful MACs / (provisioned MAC slots over the run)."""
        return self.macs / max(self.cycles, 1)


class ConvolutionCore:
    """The baseline binary convolution engine."""

    def __init__(
        self,
        config: CoreConfig | None = None,
        mode: str = "fast",
        cbuf: ConvBuffer | None = None,
    ) -> None:
        """Args:
        config: array geometry/precision (defaults to 16x16 INT8).
        mode: "fast" (vectorised + analytic cycles), "cycle" (tick-level
            handshaked simulation) or "burst" (handshaked simulation with
            the vectorized CMAC).
        cbuf: optional pre-built convolution buffer.
        """
        if mode not in ("fast", "cycle", "burst"):
            raise DataflowError(f"unknown mode {mode!r}")
        self.config = config if config is not None else CoreConfig()
        self.mode = mode
        self.cbuf = cbuf if cbuf is not None else ConvBuffer()

    # ------------------------------------------------------------------
    def _shape_for(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        stride: int,
        padding: int,
    ) -> ConvShape:
        channels, height, width = activations.shape
        kernels, _, kernel_h, kernel_w = weights.shape
        return ConvShape(
            in_channels=channels,
            in_height=height,
            in_width=width,
            out_channels=kernels,
            kernel_h=kernel_h,
            kernel_w=kernel_w,
            stride=stride,
            padding=padding,
        )

    def schedule_atoms(self, shape: ConvShape) -> int:
        """Total atoms the CSC issues for a layer."""
        return (
            shape.kernel_groups(self.config.k)
            * shape.output_pixels
            * shape.atoms_per_pixel(self.config.n)
        )

    def analytic_cycles(self, shape: ConvShape) -> int:
        """Binary core latency: one atom per cycle plus pipeline drain."""
        return self.schedule_atoms(shape) + self.config.pipeline_latency

    # ------------------------------------------------------------------
    def run_layer(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> ConvResult:
        """Run one convolution layer.

        Args:
            activations: (C, H, W) integer tensor in the core's precision.
            weights: (K, C, R, S) integer tensor in the core's precision.
        """
        activations = np.asarray(activations)
        weights = np.asarray(weights)
        if activations.ndim != 3 or weights.ndim != 4:
            raise DataflowError(
                "expected (C,H,W) activations and (K,C,R,S) weights"
            )
        shape = self._shape_for(activations, weights, stride, padding)
        activations, weights = validate_layer(
            shape, activations, weights, self.config.precision
        )
        if self.mode == "fast":
            return self._run_fast(shape, activations, weights)
        return self._run_cycle(
            shape, activations, weights, vectorized=self.mode == "burst"
        )

    def _run_fast(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
    ) -> ConvResult:
        output = golden_conv2d(
            activations, weights, shape.stride, shape.padding
        )
        atoms = self.schedule_atoms(shape)
        return ConvResult(
            output=output,
            cycles=self.analytic_cycles(shape),
            atoms=atoms,
            macs=shape.macs,
        )

    def _run_cycle(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
        vectorized: bool = False,
    ) -> ConvResult:
        self.cbuf.load_layer(
            shape, activations, weights, self.config.precision
        )
        csc_to_mac: ValidReadyChannel = ValidReadyChannel("csc->cmac")
        mac_to_acc: ValidReadyChannel = ValidReadyChannel("cmac->cacc")
        csc = SequenceController(self.config, shape, self.cbuf, csc_to_mac)
        cmac = (
            VectorCmacUnit(self.config, csc_to_mac, mac_to_acc)
            if vectorized
            else CmacUnit(self.config, csc_to_mac, mac_to_acc)
        )
        cacc = CaccUnit(self.config, shape, mac_to_acc)
        sim = CycleSimulator([csc, cmac, cacc])
        sim.reset()
        atoms = self.schedule_atoms(shape)
        sim.run_until(
            lambda: cacc.finished and not mac_to_acc.valid,
            max_cycles=atoms * 4 + 64,
        )
        return ConvResult(
            output=cacc.output,
            cycles=sim.cycle,
            atoms=atoms,
            macs=shape.macs,
            gated_cell_cycles=cmac.gated_cell_cycles,
        )
