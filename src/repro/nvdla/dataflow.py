"""Direct-convolution dataflow shared by NVDLA's CC and Tempus Core.

Terminology follows the NVDLA primer: input feature and weight cubes are
split into **1x1xn element atoms** along the channel dimension.  For every
output pixel the sequencer walks the kernel window (R x S positions) and the
channel blocks; each step broadcasts one feature atom to all k PE cells,
each cell holding the matching weight atom of its own kernel.  The CACC sums
the per-atom partial sums into the final output pixel.

Tempus Core keeps this schedule *unchanged* — only the per-atom MAC
execution differs (1 cycle binary vs a multi-cycle tub burst) — which is the
paper's dataflow-compliance claim.  Both engines are verified against
:func:`golden_conv2d`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import DataflowError
from repro.utils.intrange import IntSpec


@dataclass(frozen=True)
class ConvShape:
    """A convolution layer's geometry (single batch).

    Attributes:
        in_channels / in_height / in_width: input cube C, H, W.
        out_channels: kernel count K.
        kernel_h / kernel_w: R, S.
        stride: spatial stride (same both axes).
        padding: zero padding (same all sides).
    """

    in_channels: int
    in_height: int
    in_width: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        for name in (
            "in_channels",
            "in_height",
            "in_width",
            "out_channels",
            "kernel_h",
            "kernel_w",
            "stride",
        ):
            if getattr(self, name) < 1:
                raise DataflowError(f"{name} must be >= 1")
        if self.padding < 0:
            raise DataflowError("padding must be >= 0")
        if self.out_height < 1 or self.out_width < 1:
            raise DataflowError(
                "kernel does not fit the padded input "
                f"({self.kernel_h}x{self.kernel_w} over "
                f"{self.in_height}x{self.in_width} pad {self.padding})"
            )

    @property
    def out_height(self) -> int:
        return (
            self.in_height + 2 * self.padding - self.kernel_h
        ) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (
            self.in_width + 2 * self.padding - self.kernel_w
        ) // self.stride + 1

    @property
    def output_pixels(self) -> int:
        return self.out_height * self.out_width

    @property
    def macs(self) -> int:
        """Total multiply-accumulates in the layer."""
        return (
            self.output_pixels
            * self.out_channels
            * self.in_channels
            * self.kernel_h
            * self.kernel_w
        )

    def activation_shape(self) -> tuple[int, int, int]:
        return (self.in_channels, self.in_height, self.in_width)

    def weight_shape(self) -> tuple[int, int, int, int]:
        return (
            self.out_channels,
            self.in_channels,
            self.kernel_h,
            self.kernel_w,
        )

    def channel_blocks(self, n: int) -> int:
        """Number of 1x1xn atoms along the channel axis."""
        return math.ceil(self.in_channels / n)

    def kernel_groups(self, k: int) -> int:
        """Number of k-wide kernel groups."""
        return math.ceil(self.out_channels / k)

    def atoms_per_pixel(self, n: int) -> int:
        return self.channel_blocks(n) * self.kernel_h * self.kernel_w


def conv_atoms(
    kernels: int,
    channels: int,
    kernel_h: int,
    kernel_w: int,
    out_pixels: int,
    k: int,
    n: int,
) -> int:
    """Atoms the CSC issues for one conv layer (group) — the single
    source of the binary cycle model's work count, shared by
    :meth:`ConvShape`-driven cores, the lowering pass and the runtime
    backends so the three layers cannot drift apart."""
    return (
        math.ceil(kernels / k)
        * out_pixels
        * math.ceil(channels / n)
        * kernel_h
        * kernel_w
    )


@dataclass(frozen=True)
class Atom:
    """One scheduling step: a 1x1xn feature slice against the matching
    weight slices of one kernel group.

    Attributes:
        group: kernel-group index (kernels group*k .. group*k+k-1).
        out_y / out_x: output pixel.
        ky / kx: kernel window position.
        c0: first channel of the block.
        channels: block size (n, possibly clipped at the tensor edge).
        in_y / in_x: input position (may be outside bounds when padded).
        in_bounds: False when the window position falls in the padding.
    """

    group: int
    out_y: int
    out_x: int
    ky: int
    kx: int
    c0: int
    channels: int
    in_y: int
    in_x: int
    in_bounds: bool


def iter_atoms(shape: ConvShape, k: int, n: int) -> Iterator[Atom]:
    """Yield the full atom schedule in NVDLA order: kernel group (outer),
    output pixel, kernel window position, channel block (inner)."""
    for group in range(shape.kernel_groups(k)):
        for out_y in range(shape.out_height):
            for out_x in range(shape.out_width):
                for ky in range(shape.kernel_h):
                    in_y = out_y * shape.stride - shape.padding + ky
                    for kx in range(shape.kernel_w):
                        in_x = out_x * shape.stride - shape.padding + kx
                        in_bounds = (
                            0 <= in_y < shape.in_height
                            and 0 <= in_x < shape.in_width
                        )
                        for c0 in range(0, shape.in_channels, n):
                            channels = min(n, shape.in_channels - c0)
                            yield Atom(
                                group=group,
                                out_y=out_y,
                                out_x=out_x,
                                ky=ky,
                                kx=kx,
                                c0=c0,
                                channels=channels,
                                in_y=in_y,
                                in_x=in_x,
                                in_bounds=in_bounds,
                            )


def feature_atom(
    activations: np.ndarray, atom: Atom, n: int
) -> np.ndarray:
    """Extract the 1x1xn feature slice for an atom (zeros when padded)."""
    data = np.zeros(n, dtype=np.int64)
    if atom.in_bounds:
        data[: atom.channels] = activations[
            atom.c0 : atom.c0 + atom.channels, atom.in_y, atom.in_x
        ]
    return data


def weight_atoms(
    weights: np.ndarray, atom: Atom, k: int, n: int
) -> np.ndarray:
    """Extract the (k, n) weight block for an atom's kernel group (zeros
    for kernels/channels beyond the tensor edge)."""
    out_channels = weights.shape[0]
    block = np.zeros((k, n), dtype=np.int64)
    kernel0 = atom.group * k
    kernels = min(k, out_channels - kernel0)
    block[:kernels, : atom.channels] = weights[
        kernel0 : kernel0 + kernels,
        atom.c0 : atom.c0 + atom.channels,
        atom.ky,
        atom.kx,
    ]
    return block


def validate_layer(
    shape: ConvShape,
    activations: np.ndarray,
    weights: np.ndarray,
    precision: IntSpec,
) -> tuple[np.ndarray, np.ndarray]:
    """Check tensor shapes and ranges against a layer spec."""
    activations = np.asarray(activations)
    weights = np.asarray(weights)
    if tuple(activations.shape) != shape.activation_shape():
        raise DataflowError(
            f"activation shape {activations.shape} != "
            f"{shape.activation_shape()}"
        )
    if tuple(weights.shape) != shape.weight_shape():
        raise DataflowError(
            f"weight shape {weights.shape} != {shape.weight_shape()}"
        )
    return (
        precision.check_array(activations),
        precision.check_array(weights),
    )


def golden_conv2d(
    activations: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Reference direct convolution (exact int64 arithmetic).

    Args:
        activations: (C, H, W) integer tensor.
        weights: (K, C, R, S) integer tensor.
    """
    activations = np.asarray(activations, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if activations.ndim != 3 or weights.ndim != 4:
        raise DataflowError("expected (C,H,W) activations, (K,C,R,S) weights")
    channels, height, width = activations.shape
    kernels, w_channels, kernel_h, kernel_w = weights.shape
    if channels != w_channels:
        raise DataflowError(
            f"channel mismatch: activations {channels}, weights {w_channels}"
        )
    shape = ConvShape(
        in_channels=channels,
        in_height=height,
        in_width=width,
        out_channels=kernels,
        kernel_h=kernel_h,
        kernel_w=kernel_w,
        stride=stride,
        padding=padding,
    )
    padded = np.pad(
        activations,
        ((0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )
    out = np.zeros((kernels, shape.out_height, shape.out_width), np.int64)
    for ky in range(kernel_h):
        for kx in range(kernel_w):
            window = padded[
                :,
                ky : ky + stride * shape.out_height : stride,
                kx : kx + stride * shape.out_width : stride,
            ]
            out += np.einsum(
                "kc,cyx->kyx", weights[:, :, ky, kx], window
            )
    return out


def golden_conv2d_batched(
    activations: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: "int | tuple[int, int]" = 0,
    groups: int = 1,
) -> np.ndarray:
    """Batched reference convolution (exact int64 arithmetic).

    The batched runtime's compute kernel: one einsum per kernel-window
    position covers the whole batch, so a (B, C, H, W) run costs one
    pass instead of B.  Bit-identical to :func:`golden_conv2d` applied
    per image / per group (integer addition is order-independent).

    Args:
        activations: (B, C, H, W) integer tensor.
        weights: (K, C/groups, R, S) integer tensor.
        stride: spatial stride (same both axes).
        padding: zero padding — an int, or (pad_h, pad_w) for the
            rectangular kernels of InceptionV3.
        groups: channel groups (1 = dense, C = depthwise).
    """
    activations = np.asarray(activations, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if activations.ndim != 4 or weights.ndim != 4:
        raise DataflowError(
            "expected (B,C,H,W) activations, (K,C,R,S) weights"
        )
    pad_h, pad_w = (
        (padding, padding) if isinstance(padding, int) else padding
    )
    if pad_h < 0 or pad_w < 0:
        raise DataflowError("padding must be >= 0")
    if stride < 1:
        raise DataflowError("stride must be >= 1")
    batch, channels, height, width = activations.shape
    kernels, group_channels, kernel_h, kernel_w = weights.shape
    if groups < 1 or channels != group_channels * groups:
        raise DataflowError(
            f"channel mismatch: activations {channels}, weights "
            f"{group_channels} x {groups} groups"
        )
    if kernels % groups:
        raise DataflowError(
            f"kernel count {kernels} not divisible by groups {groups}"
        )
    out_height = (height + 2 * pad_h - kernel_h) // stride + 1
    out_width = (width + 2 * pad_w - kernel_w) // stride + 1
    if out_height < 1 or out_width < 1:
        raise DataflowError(
            f"kernel {kernel_h}x{kernel_w} does not fit the padded "
            f"{height}x{width} input"
        )
    padded = np.pad(
        activations,
        ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
        mode="constant",
    )
    out = np.zeros((batch, kernels, out_height, out_width), np.int64)
    kernels_per_group = kernels // groups
    for group in range(groups):
        group_weights = weights[
            group * kernels_per_group : (group + 1) * kernels_per_group
        ]
        group_input = padded[
            :, group * group_channels : (group + 1) * group_channels
        ]
        group_out = out[
            :, group * kernels_per_group : (group + 1) * kernels_per_group
        ]
        for ky in range(kernel_h):
            for kx in range(kernel_w):
                window = group_input[
                    :,
                    :,
                    ky : ky + stride * out_height : stride,
                    kx : kx + stride * out_width : stride,
                ]
                group_out += np.einsum(
                    "kc,bcyx->bkyx",
                    group_weights[:, :, ky, kx],
                    window,
                )
    return out


def im2col(
    activations: np.ndarray, shape: ConvShape
) -> np.ndarray:
    """Lower a (C,H,W) tensor to the (out_pixels, C*R*S) patch matrix —
    the GEMM view of convolution (Sec. II-A).  Rows walk output pixels
    row-major; each row flattens its patch channel-major (C, R, S)."""
    activations = np.asarray(activations, dtype=np.int64)
    padded = np.pad(
        activations,
        ((0, 0), (shape.padding, shape.padding),
         (shape.padding, shape.padding)),
        mode="constant",
    )
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (shape.kernel_h, shape.kernel_w), axis=(1, 2)
    )[:, :: shape.stride, :: shape.stride]
    # (C, OH, OW, R, S) -> (OH, OW, C, R, S) -> (P, C*R*S)
    return np.ascontiguousarray(
        windows[:, : shape.out_height, : shape.out_width]
        .transpose(1, 2, 0, 3, 4)
        .reshape(
            shape.output_pixels,
            shape.in_channels * shape.kernel_h * shape.kernel_w,
        )
    )
