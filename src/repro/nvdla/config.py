"""Convolution-core configuration.

The paper's hierarchy: a convolution core contains a ``k x n`` PE array —
``k`` PE cells ("MAC cells" in NVDLA terms), each with ``n`` multipliers.
``nv_small`` ships an 8x8 array at INT8; the paper evaluates 16x16, 16x4 and
single-cell (k=1) slices across INT2/INT4/INT8.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field

from repro.errors import DataflowError
from repro.utils.intrange import INT8, IntSpec, int_spec


@dataclass(frozen=True)
class CoreConfig:
    """Geometry + precision of a convolution MAC array.

    Attributes:
        k: number of PE cells (kernels processed in parallel).
        n: multipliers per PE cell (channels consumed per atom).
        precision: operand integer format.
        pipeline_latency: output-register stages between the array and the
            accumulator (NVDLA retimes CMAC outputs through one register).
        burst_overhead: extra cycles a Tempus PCU spends caching operands in
            and results out per multi-cycle burst ("the PCU takes a few
            extra cycles for caching in and out the values" — Sec. IV); the
            paper's array-level analysis uses 0.
    """

    k: int = 16
    n: int = 16
    precision: IntSpec = INT8
    pipeline_latency: int = 1
    burst_overhead: int = 0

    def __post_init__(self) -> None:
        for name in ("k", "n", "pipeline_latency", "burst_overhead"):
            value = getattr(self, name)
            # bool is an Integral subtype, but CoreConfig(k=True) is a
            # caller bug, not a 1x1 array.
            if isinstance(value, bool) or not isinstance(
                value, numbers.Integral
            ):
                raise DataflowError(
                    f"{name} must be an integer, got {value!r}"
                )
            object.__setattr__(self, name, int(value))
        if self.k < 1:
            raise DataflowError(f"k must be >= 1, got {self.k}")
        if self.n < 1:
            raise DataflowError(f"n must be >= 1, got {self.n}")
        if self.pipeline_latency < 0 or self.burst_overhead < 0:
            raise DataflowError("latency overheads must be non-negative")
        object.__setattr__(self, "precision", int_spec(self.precision))

    @property
    def pe_count(self) -> int:
        """Total multipliers in the array."""
        return self.k * self.n

    @property
    def accumulator_width(self) -> int:
        """Bits needed for one cell's dot product of n products."""
        import math

        product_bits = 2 * self.precision.width
        return product_bits + max(1, math.ceil(math.log2(self.n))) \
            if self.n > 1 else product_bits + 1

    def with_precision(self, precision: "int | str | IntSpec") -> "CoreConfig":
        return CoreConfig(
            k=self.k,
            n=self.n,
            precision=int_spec(precision),
            pipeline_latency=self.pipeline_latency,
            burst_overhead=self.burst_overhead,
        )

    def describe(self) -> str:
        return f"{self.k}x{self.n} {self.precision.name}"


#: The embedded NVDLA configuration the paper builds on (8 cells x 8 MACs).
NV_SMALL = CoreConfig(k=8, n=8, precision=INT8)

#: The array size most of the paper's evaluation uses.
ARRAY_16X16 = CoreConfig(k=16, n=16, precision=INT8)

#: The place-and-route case study (INT4, 16x4).
ARRAY_16X4_INT4 = CoreConfig(k=16, n=4, precision=int_spec(4))
