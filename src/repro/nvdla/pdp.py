"""Planar Data Processor (PDP) — NVDLA's pooling engine.

Integer max/average pooling over (K, H, W) activation tensors.  Average
pooling is exact fixed-point: the window sum is scaled by a rounded
reciprocal, matching how the hardware avoids a divider.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataflowError

_MODES = ("max", "average")
#: Fixed-point bits for the average-pool reciprocal.
_RECIP_BITS = 16


@dataclass(frozen=True)
class PdpConfig:
    """One pooling pass.

    Attributes:
        mode: "max" or "average".
        kernel: square window size.
        stride: window stride (defaults to the kernel size).
        padding: zero padding on all sides.
    """

    mode: str
    kernel: int
    stride: int | None = None
    padding: int = 0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise DataflowError(
                f"unknown pooling mode {self.mode!r}; expected {_MODES}"
            )
        if self.kernel < 1:
            raise DataflowError("pooling kernel must be >= 1")
        if self.padding < 0:
            raise DataflowError("padding must be >= 0")
        if self.stride is None:
            object.__setattr__(self, "stride", self.kernel)
        if self.stride < 1:
            raise DataflowError("stride must be >= 1")


class Pdp:
    """Behavioral PDP."""

    def __init__(self, config: PdpConfig) -> None:
        self.config = config
        self.windows_processed = 0

    def output_size(self, height: int, width: int) -> tuple[int, int]:
        config = self.config
        out_h = (height + 2 * config.padding - config.kernel) \
            // config.stride + 1
        out_w = (width + 2 * config.padding - config.kernel) \
            // config.stride + 1
        if out_h < 1 or out_w < 1:
            raise DataflowError(
                f"pooling window {config.kernel} does not fit "
                f"{height}x{width} with padding {config.padding}"
            )
        return out_h, out_w

    def apply(self, activations: np.ndarray) -> np.ndarray:
        """Pool a (K, H, W) tensor; returns int64 (K, OH, OW)."""
        config = self.config
        values = np.asarray(activations, dtype=np.int64)
        if values.ndim != 3:
            raise DataflowError("PDP expects a (K, H, W) tensor")
        channels, height, width = values.shape
        out_h, out_w = self.output_size(height, width)

        if config.mode == "max":
            # Pad with the minimum so padding never wins the max.
            pad_value = np.iinfo(np.int64).min
        else:
            pad_value = 0
        padded = np.pad(
            values,
            ((0, 0), (config.padding, config.padding),
             (config.padding, config.padding)),
            mode="constant",
            constant_values=pad_value,
        )
        out = np.empty((channels, out_h, out_w), dtype=np.int64)
        recip = int(
            round((1 << _RECIP_BITS) / (config.kernel * config.kernel))
        )
        for row in range(out_h):
            for col in range(out_w):
                window = padded[
                    :,
                    row * config.stride : row * config.stride
                    + config.kernel,
                    col * config.stride : col * config.stride
                    + config.kernel,
                ]
                if config.mode == "max":
                    out[:, row, col] = window.max(axis=(1, 2))
                else:
                    sums = window.sum(axis=(1, 2))
                    scaled = sums * recip
                    offset = 1 << (_RECIP_BITS - 1)
                    out[:, row, col] = np.sign(scaled) * (
                        (np.abs(scaled) + offset) >> _RECIP_BITS
                    )
        self.windows_processed += channels * out_h * out_w
        return out

    def apply_many(self, activations: np.ndarray) -> np.ndarray:
        """Batched :meth:`apply` over a (B, K, H, W) tensor.

        Pooling treats every (image, channel) plane independently, so
        the batch folds into the channel axis for one vectorised pass —
        bit-identical to per-image :meth:`apply`.
        """
        values = np.asarray(activations, dtype=np.int64)
        if values.ndim != 4:
            raise DataflowError("PDP batch expects a (B, K, H, W) tensor")
        batch, channels, height, width = values.shape
        pooled = self.apply(
            values.reshape(batch * channels, height, width)
        )
        return pooled.reshape(batch, channels, *pooled.shape[1:])
