"""Single-point Data Processor (SDP) — NVDLA's post-processing stage.

Fig. 3 places a post-processing unit (activation engine et al.) after the
convolution core.  The SDP consumes CACC partial sums (wide integers) and
produces the next layer's activations: per-kernel bias add, integer
requantization (multiply + arithmetic shift with round-to-nearest — the
fixed-point equivalent of scaling by ``multiplier / 2^shift``), and the
activation function.  Everything is exact integer arithmetic, so a whole
network runs bit-reproducibly through either convolution core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataflowError
from repro.utils.intrange import IntSpec, int_spec

_ACTIVATIONS = ("none", "relu", "prelu")


def requant_params_from_scale(
    scale: float, precision_bits: int = 16
) -> tuple[int, int]:
    """Fixed-point (multiplier, shift) approximating a float rescale.

    Chooses the largest shift such that ``multiplier = round(scale * 2^s)``
    fits ``precision_bits`` bits, i.e. ``multiplier / 2^shift ~= scale``.
    """
    if scale <= 0:
        raise DataflowError(f"requant scale must be positive, got {scale}")
    shift = 0
    multiplier = scale
    limit = (1 << precision_bits) - 1
    while multiplier < limit / 2 and shift < 62:
        shift += 1
        multiplier = scale * (1 << shift)
    multiplier = int(round(multiplier))
    if multiplier > limit:
        multiplier >>= 1
        shift -= 1
    return max(multiplier, 1), shift


def _rounded_shift(values: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-away-from-zero."""
    if shift == 0:
        return values
    offset = 1 << (shift - 1)
    magnitude = (np.abs(values) + offset) >> shift
    return np.sign(values) * magnitude


@dataclass(frozen=True)
class SdpConfig:
    """One SDP pass.

    Attributes:
        out_precision: activation format produced (INT8 typical).
        bias: optional per-kernel bias added before rescale (int32 range).
        multiplier / shift: requantization as out = in * mult >> shift.
        activation: "none", "relu" or "prelu".
        prelu_multiplier / prelu_shift: negative-side scale for PReLU.
    """

    out_precision: IntSpec
    bias: np.ndarray | None = None
    multiplier: int = 1
    shift: int = 0
    activation: str = "none"
    prelu_multiplier: int = 1
    prelu_shift: int = 3

    def __post_init__(self) -> None:
        if self.activation not in _ACTIVATIONS:
            raise DataflowError(
                f"unknown activation {self.activation!r}; expected one of "
                f"{_ACTIVATIONS}"
            )
        if self.multiplier < 1 or self.shift < 0:
            raise DataflowError("requant multiplier/shift out of range")
        object.__setattr__(
            self, "out_precision", int_spec(self.out_precision)
        )


class Sdp:
    """Behavioral SDP: bias -> activation -> requantize -> saturate."""

    def __init__(self, config: SdpConfig) -> None:
        self.config = config
        self.elements_processed = 0

    def apply(self, psums: np.ndarray) -> np.ndarray:
        """Process a (K, OH, OW) partial-sum tensor into activations.

        Returns:
            int64 tensor saturated to the configured output precision.
        """
        values = np.asarray(psums, dtype=np.int64)
        if values.ndim != 3:
            raise DataflowError("SDP expects a (K, OH, OW) tensor")
        # One arithmetic path for single and batched tensors: a single
        # image is a batch of one.
        return self.apply_many(values[None])[0]

    def apply_many(self, psums: np.ndarray) -> np.ndarray:
        """Batched :meth:`apply` over a (B, K, OH, OW) tensor.

        One vectorised pass for the whole batch; every operation is
        elementwise or broadcast over the batch axis, so per-image
        results are bit-identical to :meth:`apply`.
        """
        config = self.config
        values = np.asarray(psums, dtype=np.int64)
        if values.ndim != 4:
            raise DataflowError("SDP batch expects a (B, K, OH, OW) tensor")
        if config.bias is not None:
            bias = np.asarray(config.bias, dtype=np.int64)
            if bias.shape != (values.shape[1],):
                raise DataflowError(
                    f"bias shape {bias.shape} != ({values.shape[1]},)"
                )
            values = values + bias[None, :, None, None]
        if config.activation == "relu":
            values = np.maximum(values, 0)
        elif config.activation == "prelu":
            negative = _rounded_shift(
                values * config.prelu_multiplier, config.prelu_shift
            )
            values = np.where(values >= 0, values, negative)
        values = _rounded_shift(values * config.multiplier, config.shift)
        self.elements_processed += values.size
        return config.out_precision.clip(values).astype(np.int64)
