"""NVDLA-style convolution pipeline (the paper's baseline substrate).

Models the nv_small-flavoured convolution pipeline of Fig. 3: the
convolution buffer (CBUF) holding activations and weights, the convolution
sequence controller (CSC) that splits data cubes into 1x1xn atoms and
broadcasts feature data to the k MAC cells, the binary CMAC array, and the
convolution accumulator (CACC).  The behavioral models are bit-exact against
a NumPy golden convolution; netlist builders in :mod:`repro.nvdla.hwmodel`
provide the synthesis-side view of the same hardware.
"""

from repro.nvdla.config import NV_SMALL, CoreConfig
from repro.nvdla.dataflow import ConvShape, golden_conv2d
from repro.nvdla.conv_core import ConvolutionCore, ConvResult
from repro.nvdla.pdp import Pdp, PdpConfig
from repro.nvdla.pipeline import (
    ConvStage,
    InferencePipeline,
    PoolStage,
    compare_engines,
)
from repro.nvdla.sdp import Sdp, SdpConfig
from repro.nvdla.tiling import plan_layer_tiles, run_tiled_layer

__all__ = [
    "CoreConfig",
    "NV_SMALL",
    "ConvShape",
    "golden_conv2d",
    "ConvolutionCore",
    "ConvResult",
    "Sdp",
    "SdpConfig",
    "Pdp",
    "PdpConfig",
    "ConvStage",
    "PoolStage",
    "InferencePipeline",
    "compare_engines",
    "plan_layer_tiles",
    "run_tiled_layer",
]
