"""Convolution buffer (CBUF) model.

The CBUF stores the input feature cube and the filter weights and serves
atom fetches to the sequencer.  The behavioral model checks that a layer
tile actually fits the configured capacity (nv_small ships 128 KiB in 16
banks) and counts accesses for the stats report; contents are held as NumPy
tensors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataflowError
from repro.nvdla.dataflow import Atom, ConvShape, feature_atom, weight_atoms
from repro.utils.intrange import IntSpec


class ConvBuffer:
    """Activation + weight storage with capacity accounting."""

    def __init__(
        self,
        capacity_kib: int = 128,
        banks: int = 16,
    ) -> None:
        """Args:
        capacity_kib: total CBUF size (nv_small: 128 KiB).
        banks: bank count; activations and weights may not share a bank.
        """
        if capacity_kib < 1 or banks < 2:
            raise DataflowError("CBUF needs >=1 KiB and >=2 banks")
        self.capacity_bytes = capacity_kib * 1024
        self.banks = banks
        self.bank_bytes = self.capacity_bytes // banks
        self._activations: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._shape: ConvShape | None = None
        self.feature_reads = 0
        self.weight_reads = 0

    @staticmethod
    def _tensor_bytes(tensor: np.ndarray, precision: IntSpec) -> int:
        bits = tensor.size * precision.width
        return (bits + 7) // 8

    def banks_needed(self, tensor_bytes: int) -> int:
        return max(1, -(-tensor_bytes // self.bank_bytes))

    def load_layer(
        self,
        shape: ConvShape,
        activations: np.ndarray,
        weights: np.ndarray,
        precision: IntSpec,
    ) -> None:
        """Load one layer tile, verifying the capacity split.

        Raises:
            DataflowError: if activations + weights cannot share the buffer.
        """
        act_banks = self.banks_needed(
            self._tensor_bytes(activations, precision)
        )
        wt_banks = self.banks_needed(self._tensor_bytes(weights, precision))
        if act_banks + wt_banks > self.banks:
            raise DataflowError(
                f"layer does not fit CBUF: activations need {act_banks} "
                f"banks, weights {wt_banks}, available {self.banks} "
                "(tile the layer before loading)"
            )
        self._activations = np.asarray(activations, dtype=np.int64)
        self._weights = np.asarray(weights, dtype=np.int64)
        self._shape = shape
        self.feature_reads = 0
        self.weight_reads = 0

    @property
    def loaded(self) -> bool:
        return self._activations is not None

    def fetch_feature(self, atom: Atom, n: int) -> np.ndarray:
        if self._activations is None:
            raise DataflowError("CBUF read before load_layer()")
        self.feature_reads += 1
        return feature_atom(self._activations, atom, n)

    def fetch_weights(self, atom: Atom, k: int, n: int) -> np.ndarray:
        if self._weights is None:
            raise DataflowError("CBUF read before load_layer()")
        self.weight_reads += 1
        return weight_atoms(self._weights, atom, k, n)
