"""Full inference pipeline: conv core + SDP + PDP, layer by layer.

The complete NVDLA picture of Fig. 3: activations stream through the
convolution core (binary CMAC *or* Tempus Core — selected by name), the
SDP requantizes and applies the activation function, and the PDP pools.
All arithmetic is exact integers, so a whole network produces bit-identical
outputs on both cores while their cycle counts differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataflowError
from repro.nvdla.config import CoreConfig
from repro.nvdla.dataflow import ConvShape, golden_conv2d_batched
from repro.nvdla.pdp import Pdp, PdpConfig
from repro.nvdla.sdp import Sdp, SdpConfig


@dataclass(frozen=True)
class ConvStage:
    """One convolution layer plus its SDP pass.

    Attributes:
        name: stage label.
        weights: (K, C, R, S) integer weights in the core's precision.
        sdp: post-processing configuration.
        stride / padding: conv parameters.
    """

    name: str
    weights: np.ndarray
    sdp: SdpConfig
    stride: int = 1
    padding: int = 0


@dataclass(frozen=True)
class PoolStage:
    """One PDP pooling pass."""

    name: str
    pdp: PdpConfig


@dataclass(frozen=True)
class StageResult:
    """Execution record of one pipeline stage."""

    name: str
    kind: str
    output_shape: tuple[int, ...]
    conv_cycles: int = 0


@dataclass(frozen=True)
class PipelineResult:
    """A full forward pass."""

    output: np.ndarray
    stages: tuple[StageResult, ...]

    @property
    def conv_cycles(self) -> int:
        return sum(stage.conv_cycles for stage in self.stages)


class InferencePipeline:
    """A sequential integer CNN executed on a selectable conv engine."""

    def __init__(
        self,
        config: CoreConfig,
        stages: "list[ConvStage | PoolStage]",
        engine: str = "tempus",
    ) -> None:
        """Args:
        config: MAC array geometry/precision.
        stages: ordered conv/pool stages.
        engine: any registered compute backend ("tempus", "binary",
            "tugemm", "tubgemm", ... — see
            :mod:`repro.runtime.backends`).
        """
        # Imported here: the backend registry sits above this module in
        # the package graph (it builds on repro.core / repro.nvdla), so
        # a module-level import would be circular.
        from repro.runtime.backends import get_backend

        backend = get_backend(engine)
        self.config = config
        self.stages = list(stages)
        self.engine_name = backend.name
        self._core = backend.make_core(config, None, "fast")

    def run(self, activations: np.ndarray) -> PipelineResult:
        """Forward one (C, H, W) integer input through every stage."""
        current = np.asarray(activations, dtype=np.int64)
        records: list[StageResult] = []
        for stage in self.stages:
            if isinstance(stage, ConvStage):
                result = self._core.run_layer(
                    current,
                    stage.weights,
                    stride=stage.stride,
                    padding=stage.padding,
                )
                current = Sdp(stage.sdp).apply(result.output)
                records.append(
                    StageResult(
                        name=stage.name,
                        kind="conv",
                        output_shape=tuple(current.shape),
                        conv_cycles=result.cycles,
                    )
                )
            elif isinstance(stage, PoolStage):
                current = Pdp(stage.pdp).apply(current)
                records.append(
                    StageResult(
                        name=stage.name,
                        kind="pool",
                        output_shape=tuple(current.shape),
                    )
                )
            else:
                raise DataflowError(
                    f"unsupported stage type {type(stage).__name__}"
                )
        return PipelineResult(output=current, stages=tuple(records))

    def run_batch(self, activations: np.ndarray) -> PipelineResult:
        """Forward a (B, C, H, W) integer batch, one vectorised pass per
        stage instead of B sequential forward passes.

        Outputs are bit-identical to stacking per-image :meth:`run`
        results.  Conv cycle counts are the per-image analytic cycles
        times the batch size — the core processes images back to back,
        and both engines' analytic models are exact (asserted against
        the tick/burst simulations by the engine-equivalence tests).
        """
        batch = np.asarray(activations, dtype=np.int64)
        if batch.ndim != 4:
            raise DataflowError("expected a (B, C, H, W) batch")
        precision = self.config.precision
        current = precision.check_array(batch)
        records: list[StageResult] = []
        for stage in self.stages:
            if isinstance(stage, ConvStage):
                weights = precision.check_array(
                    np.asarray(stage.weights)
                )
                size, channels, height, width = current.shape
                shape = ConvShape(
                    in_channels=channels,
                    in_height=height,
                    in_width=width,
                    out_channels=weights.shape[0],
                    kernel_h=weights.shape[2],
                    kernel_w=weights.shape[3],
                    stride=stage.stride,
                    padding=stage.padding,
                )
                psums = golden_conv2d_batched(
                    current, weights, stage.stride, stage.padding
                )
                if self.engine_name == "tempus":
                    per_image = self._core.analytic_cycles(shape, weights)
                else:
                    per_image = self._core.analytic_cycles(shape)
                current = Sdp(stage.sdp).apply_many(psums)
                records.append(
                    StageResult(
                        name=stage.name,
                        kind="conv",
                        output_shape=tuple(current.shape),
                        conv_cycles=per_image * size,
                    )
                )
            elif isinstance(stage, PoolStage):
                current = Pdp(stage.pdp).apply_many(current)
                records.append(
                    StageResult(
                        name=stage.name,
                        kind="pool",
                        output_shape=tuple(current.shape),
                    )
                )
            else:
                raise DataflowError(
                    f"unsupported stage type {type(stage).__name__}"
                )
        return PipelineResult(output=current, stages=tuple(records))


def compare_engines(
    config: CoreConfig,
    stages: "list[ConvStage | PoolStage]",
    activations: np.ndarray,
) -> tuple[PipelineResult, PipelineResult]:
    """Run the same network on both engines; returns (binary, tempus).

    Raises:
        DataflowError: if the two engines ever disagree (they cannot, by
            construction — this is the drop-in guarantee made executable).
    """
    binary = InferencePipeline(config, stages, engine="binary").run(
        activations
    )
    tempus = InferencePipeline(config, stages, engine="tempus").run(
        activations
    )
    if not np.array_equal(binary.output, tempus.output):
        raise DataflowError(
            "engines diverged — dataflow compliance violated"
        )
    return binary, tempus
