"""Netlist builders for the binary (NVDLA CMAC) datapath.

Hierarchy mirrors the paper's three evaluation granularities:

* :func:`binary_pe_cell_netlist` — one MAC cell (n multipliers, weight and
  product registers, adder tree, psum register) — Table II.
* :func:`binary_array_netlist` — k cells + feature broadcast — Fig. 4.
* :func:`cmac_unit_netlist` — the full CMAC unit with input staging,
  output registers, retiming and handshake — Fig. 5 / Table III.

Activity annotations (toggle rates) are the power model's inputs; they are
centralised here so the calibration story is in one place.
"""

from __future__ import annotations

import math

from repro.hw.adder_tree import adder_tree
from repro.hw.components import (
    broadcast_buffers,
    clock_gate,
    handshake_controller,
    register_bank,
)
from repro.hw.netlist import Netlist
from repro.hw.wallace import wallace_multiplier
from repro.utils.intrange import IntSpec, int_spec

# Toggle-rate calibration for the binary datapath.
MULT_ACTIVITY = 0.25  # array multipliers glitch heavily
TREE_ACTIVITY = 0.20
WEIGHT_REG_ACTIVITY = 0.02  # weights cached per atom reuse window
PRODUCT_REG_ACTIVITY = 0.30  # new products every cycle
PSUM_REG_ACTIVITY = 0.30
INPUT_REG_ACTIVITY = 0.30  # a fresh feature atom arrives every cycle


def accumulator_width(precision: IntSpec, n: int) -> int:
    """Bits for an exact n-lane dot product at a given precision."""
    product_bits = 2 * precision.width
    return product_bits + (max(1, math.ceil(math.log2(n))) if n > 1 else 1)


def binary_pe_cell_netlist(
    precision: "int | str | IntSpec", n: int, name: str = "binary_pe_cell"
) -> Netlist:
    """One NVDLA MAC cell: n Wallace multipliers + registers + adder
    tree."""
    spec = int_spec(precision)
    width = spec.width
    acc_bits = accumulator_width(spec, n)
    cell = Netlist(name)
    mult = wallace_multiplier(width, name="mult")
    mult.activity = MULT_ACTIVITY
    cell.add_child(mult, n)
    cell.add_child(
        register_bank(n * width, "weight_regs", WEIGHT_REG_ACTIVITY)
    )
    cell.add_child(
        register_bank(n * 2 * width, "product_regs", PRODUCT_REG_ACTIVITY)
    )
    cell.add_child(
        adder_tree(n, 2 * width, name="psum_tree", activity=TREE_ACTIVITY)
    )
    cell.add_child(register_bank(acc_bits, "psum_reg", PSUM_REG_ACTIVITY))
    return cell


def binary_array_netlist(
    k: int,
    n: int,
    precision: "int | str | IntSpec",
    name: str = "binary_array",
) -> Netlist:
    """k x n binary PE array: k cells plus the feature broadcast fabric."""
    spec = int_spec(precision)
    array = Netlist(name)
    cell = binary_pe_cell_netlist(spec, n, name="pe_cell")
    array.add_child(cell, k)
    array.add_child(broadcast_buffers(n * spec.width, k, name="bcast"))
    array.connect("bcast", "pe_cell", n * spec.width)
    array.connect("pe_cell", "TOP", accumulator_width(spec, n))
    return array


def cmac_unit_netlist(
    k: int,
    n: int,
    precision: "int | str | IntSpec",
    name: str = "cmac_unit",
) -> Netlist:
    """The complete CMAC unit: array + staging/output registers +
    handshake + per-cell clock gating (idle-cell power control)."""
    spec = int_spec(precision)
    acc_bits = accumulator_width(spec, n)
    unit = Netlist(name)
    cell = binary_pe_cell_netlist(spec, n, name="pe_cell")
    unit.add_child(cell, k)
    unit.add_child(
        register_bank(n * spec.width, "input_regs", INPUT_REG_ACTIVITY)
    )
    unit.add_child(broadcast_buffers(n * spec.width, k, name="bcast"))
    unit.add_child(
        register_bank(k * acc_bits, "output_regs", PSUM_REG_ACTIVITY)
    )
    unit.add_child(handshake_controller("handshake"))
    unit.add_child(clock_gate("cell_cg"), k)
    unit.connect("input_regs", "bcast", n * spec.width)
    unit.connect("bcast", "pe_cell", n * spec.width)
    unit.connect("pe_cell", "output_regs", acc_bits)
    unit.connect("output_regs", "TOP", k * acc_bits)
    unit.connect("handshake", "pe_cell", 4)
    return unit
