"""Per-layer precision profiles (uniform INT2/4/8 and mixed recipes).

The paper's headline scaling axis: temporal-unary execution gets
*cheaper* as precision drops (a 2s-unary burst lasts ``ceil(|w|/2)``
cycles, so the worst case is 64 cycles at INT8, 4 at INT4 and 1 at
INT2) while the binary CMAC's cycle cost is precision-independent.  A
:class:`PrecisionProfile` names the integer format of every layer in a
network so the whole inference stack — quantization, lowering, batched
and sharded execution, benchmarks — can run uniform low-precision
networks *and* the standard edge-quantization recipe: first and last
layer at INT8 (input fidelity / logit resolution), interior layers at
INT4 or INT2.

Profiles are resolved by :func:`precision_profile`, which accepts an
existing profile, a registry name (``"mixed"``), or anything
:func:`~repro.utils.intrange.int_spec` understands (``8``, ``"INT4"``,
an :class:`~repro.utils.intrange.IntSpec`) for uniform profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PrecisionError
from repro.utils.intrange import INT2, INT4, INT8, IntSpec, int_spec


@dataclass(frozen=True)
class PrecisionProfile:
    """Integer format of every layer in a network.

    Attributes:
        name: profile identifier (registry key for the named recipes).
        interior: format of the interior (hidden) layers.
        first: optional override for the first layer (None = interior).
        last: optional override for the last layer (None = interior).
    """

    name: str
    interior: IntSpec
    first: IntSpec | None = None
    last: IntSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise PrecisionError("profile name must be non-empty")
        object.__setattr__(self, "interior", int_spec(self.interior))
        for edge in ("first", "last"):
            spec = getattr(self, edge)
            if spec is not None:
                spec = int_spec(spec)
                # Normalise "override equals interior" to no override,
                # so uniform profiles compare equal however spelled.
                object.__setattr__(
                    self, edge, None if spec == self.interior else spec
                )

    @property
    def is_uniform(self) -> bool:
        return self.first is None and self.last is None

    @property
    def widest(self) -> IntSpec:
        """The widest member format — what the MAC array must be
        provisioned for."""
        members = [self.interior]
        if self.first is not None:
            members.append(self.first)
        if self.last is not None:
            members.append(self.last)
        return max(members, key=lambda spec: spec.width)

    def spec_for(self, index: int, count: int) -> IntSpec:
        """Format of layer ``index`` in a ``count``-layer network.

        A single-layer network is both first and last; the last-layer
        override wins (both are INT8 in the standard mixed recipes, so
        the distinction only matters for custom profiles).
        """
        if count < 1:
            raise PrecisionError("layer count must be >= 1")
        if not 0 <= index < count:
            raise PrecisionError(
                f"layer index {index} outside [0, {count})"
            )
        if index == count - 1 and self.last is not None:
            return self.last
        if index == 0 and self.first is not None:
            return self.first
        return self.interior

    def layer_specs(self, count: int) -> tuple[IntSpec, ...]:
        """Per-layer formats for a ``count``-layer network."""
        return tuple(self.spec_for(index, count) for index in range(count))

    def describe(self) -> str:
        """``"INT4"`` for uniform profiles, ``"INT8/INT4/INT8"``
        (first/interior/last) for mixed ones."""
        if self.is_uniform:
            return self.interior.name
        first = (self.first or self.interior).name
        last = (self.last or self.interior).name
        return f"{first}/{self.interior.name}/{last}"


#: Uniform profiles for the paper's three precisions.
UNIFORM_INT8 = PrecisionProfile("int8", INT8)
UNIFORM_INT4 = PrecisionProfile("int4", INT4)
UNIFORM_INT2 = PrecisionProfile("int2", INT2)

#: The standard edge-quantization recipe: INT8 first/last layer (input
#: fidelity and logit resolution), INT4 interior.
MIXED_EDGE = PrecisionProfile("mixed", INT4, first=INT8, last=INT8)

#: The aggressive variant: INT2 interior under INT8 edges.
MIXED_INT2 = PrecisionProfile("mixed_int2", INT2, first=INT8, last=INT8)

#: Named profiles accepted anywhere a precision is configured (the CLI's
#: ``--precision`` choices).
PROFILES: dict[str, PrecisionProfile] = {
    profile.name: profile
    for profile in (
        UNIFORM_INT8,
        UNIFORM_INT4,
        UNIFORM_INT2,
        MIXED_EDGE,
        MIXED_INT2,
    )
}


def uniform_profile(precision: "int | str | IntSpec") -> PrecisionProfile:
    """The uniform profile for one format (``INT4`` -> ``"int4"``)."""
    spec = int_spec(precision)
    named = PROFILES.get(spec.name.lower())
    if named is not None and named.interior == spec:
        return named
    return PrecisionProfile(spec.name.lower(), spec)


def precision_profile(
    precision: "PrecisionProfile | IntSpec | int | str",
) -> PrecisionProfile:
    """Resolve anything precision-shaped into a profile.

    Accepts a :class:`PrecisionProfile`, a registry name (``"mixed"``,
    case-insensitive), or a uniform format as an
    :class:`~repro.utils.intrange.IntSpec` / width / ``"INT8"`` name.
    """
    if isinstance(precision, PrecisionProfile):
        return precision
    if isinstance(precision, str):
        named = PROFILES.get(precision.strip().lower())
        if named is not None:
            return named
    return uniform_profile(precision)
