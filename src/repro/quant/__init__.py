"""Low-precision integer quantization substrate.

Implements the symmetric/affine quantizers, min-max and percentile (trained
threshold style) calibration, and the :class:`QuantizedTensor` container used
by the model zoo, the profiling package and the Fig. 1 accuracy experiment.
"""

from repro.quant.calibration import (
    CalibrationResult,
    calibrate_minmax,
    calibrate_percentile,
)
from repro.quant.profile import (
    MIXED_EDGE,
    MIXED_INT2,
    PROFILES,
    UNIFORM_INT2,
    UNIFORM_INT4,
    UNIFORM_INT8,
    PrecisionProfile,
    precision_profile,
    uniform_profile,
)
from repro.quant.qtensor import QuantizedTensor
from repro.quant.quantize import (
    AffineQuantizer,
    SymmetricQuantizer,
    fake_quantize,
    quantize_per_channel,
    quantize_per_tensor,
)

__all__ = [
    "CalibrationResult",
    "calibrate_minmax",
    "calibrate_percentile",
    "MIXED_EDGE",
    "MIXED_INT2",
    "PROFILES",
    "PrecisionProfile",
    "precision_profile",
    "uniform_profile",
    "UNIFORM_INT2",
    "UNIFORM_INT4",
    "UNIFORM_INT8",
    "QuantizedTensor",
    "SymmetricQuantizer",
    "AffineQuantizer",
    "fake_quantize",
    "quantize_per_tensor",
    "quantize_per_channel",
]
