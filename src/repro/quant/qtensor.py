"""Quantized tensor container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrecisionError
from repro.utils.intrange import IntSpec


@dataclass(frozen=True)
class QuantizedTensor:
    """Integer codes plus the dequantization metadata.

    Attributes:
        data: integer codes (int64).
        spec: the integer format the codes live in.
        scale: scalar (per-tensor) or 1-D array (per-channel) of scales.
        axis: channel axis for per-channel scales, or None for per-tensor.
    """

    data: np.ndarray
    spec: IntSpec
    scale: np.ndarray | np.float64
    axis: int | None = None

    def __post_init__(self) -> None:
        self.spec.check_array(self.data)
        if self.axis is not None:
            scales = np.asarray(self.scale)
            if scales.ndim != 1:
                raise PrecisionError("per-channel scale must be 1-D")
            if scales.shape[0] != self.data.shape[self.axis]:
                raise PrecisionError(
                    "per-channel scale length does not match channel axis"
                )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def size(self) -> int:
        return int(self.data.size)

    def dequantize(self) -> np.ndarray:
        """Real-valued view of the tensor."""
        if self.axis is None:
            return self.data.astype(np.float64) * float(self.scale)
        scales = np.asarray(self.scale, dtype=np.float64)
        shape = [1] * self.data.ndim
        shape[self.axis] = scales.shape[0]
        return self.data.astype(np.float64) * scales.reshape(shape)

    def zero_fraction(self) -> float:
        """Fraction of zero codes — the paper's Table I "word sparsity"."""
        if self.size == 0:
            return 0.0
        return float(np.mean(self.data == 0))

    def magnitudes(self) -> np.ndarray:
        return np.abs(self.data)
