"""Calibration: choosing the clipping threshold before quantization.

Two strategies are provided, matching common practice for the INT8/INT4
models the paper profiles:

* **min-max**: threshold = max |x| (no clipping, widest scale).
* **percentile**: threshold = the q-th percentile of |x| — a light-weight
  stand-in for the "trained quantization thresholds" of Jain et al. (the
  paper's Fig. 1 source), which clip outliers to preserve resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError


@dataclass(frozen=True)
class CalibrationResult:
    """A chosen clipping threshold.

    Attributes:
        threshold: positive clipping magnitude (maps to the top code).
        coverage: fraction of elements with |x| <= threshold.
    """

    threshold: float
    coverage: float


def _validate(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise CalibrationError("cannot calibrate an empty tensor")
    if not np.all(np.isfinite(arr)):
        raise CalibrationError("tensor contains non-finite values")
    return arr


def calibrate_minmax(values: np.ndarray) -> CalibrationResult:
    """Threshold at the maximum absolute value."""
    arr = _validate(values)
    threshold = float(np.abs(arr).max())
    if threshold == 0.0:
        threshold = 1.0  # all-zero tensor: any scale works; pick 1
    return CalibrationResult(threshold=threshold, coverage=1.0)


def calibrate_percentile(
    values: np.ndarray, percentile: float = 99.9
) -> CalibrationResult:
    """Threshold at a percentile of |x| (clips the tail above it)."""
    if not 0.0 < percentile <= 100.0:
        raise CalibrationError(
            f"percentile must be in (0, 100], got {percentile}"
        )
    arr = _validate(values)
    magnitudes = np.abs(arr)
    threshold = float(np.percentile(magnitudes, percentile))
    if threshold == 0.0:
        return calibrate_minmax(arr)
    coverage = float(np.mean(magnitudes <= threshold))
    return CalibrationResult(threshold=threshold, coverage=coverage)
