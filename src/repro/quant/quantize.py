"""Quantizer implementations.

Weights use symmetric quantization (zero maps to code 0 — essential for the
sparsity exploitation story: a zero weight becomes a *silent* tub lane).
Activations may use affine quantization with a zero point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError
from repro.quant.calibration import calibrate_minmax, calibrate_percentile
from repro.quant.qtensor import QuantizedTensor
from repro.utils.intrange import IntSpec, int_spec


@dataclass(frozen=True)
class SymmetricQuantizer:
    """Symmetric linear quantizer: q = clip(round(x / scale)).

    The scale maps the calibration threshold onto the largest positive code
    (2^(w-1) - 1), so the most negative code is only produced by saturation —
    mirroring standard symmetric INT8 weight quantization.
    """

    spec: IntSpec
    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise CalibrationError(f"scale must be positive, got {self.scale}")

    @classmethod
    def from_threshold(
        cls, precision: "int | str | IntSpec", threshold: float
    ) -> "SymmetricQuantizer":
        spec = int_spec(precision)
        if threshold <= 0:
            raise CalibrationError("threshold must be positive")
        # A subnormal threshold can underflow the division to 0.0;
        # floor at the smallest normal double (every finite input then
        # quantizes to 0, which is the right answer at that scale).
        scale = max(threshold / spec.max_value, np.finfo(np.float64).tiny)
        return cls(spec=spec, scale=scale)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        codes = np.round(arr / self.scale)
        return self.spec.clip(codes).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        return np.asarray(codes, dtype=np.float64) * self.scale


@dataclass(frozen=True)
class AffineQuantizer:
    """Affine quantizer: q = clip(round(x / scale) + zero_point)."""

    spec: IntSpec
    scale: float
    zero_point: int

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise CalibrationError(f"scale must be positive, got {self.scale}")
        self.spec.check(self.zero_point)

    @classmethod
    def from_range(
        cls, precision: "int | str | IntSpec", low: float, high: float
    ) -> "AffineQuantizer":
        spec = int_spec(precision)
        if high <= low:
            raise CalibrationError(f"empty range [{low}, {high}]")
        scale = (high - low) / (spec.levels - 1)
        zero_point = int(
            np.clip(
                round(spec.min_value - low / scale),
                spec.min_value,
                spec.max_value,
            )
        )
        return cls(spec=spec, scale=scale, zero_point=zero_point)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        codes = np.round(arr / self.scale) + self.zero_point
        return self.spec.clip(codes).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        shifted = np.asarray(codes, dtype=np.float64) - self.zero_point
        return shifted * self.scale


def quantize_per_tensor(
    values: np.ndarray,
    precision: "int | str | IntSpec",
    percentile: float | None = None,
) -> QuantizedTensor:
    """Symmetric per-tensor quantization with min-max or percentile
    calibration."""
    if percentile is None:
        calib = calibrate_minmax(values)
    else:
        calib = calibrate_percentile(values, percentile)
    quantizer = SymmetricQuantizer.from_threshold(precision, calib.threshold)
    return QuantizedTensor(
        data=quantizer.quantize(values),
        spec=quantizer.spec,
        scale=np.float64(quantizer.scale),
        axis=None,
    )


def quantize_per_channel(
    values: np.ndarray,
    precision: "int | str | IntSpec",
    axis: int = 0,
    percentile: float | None = None,
) -> QuantizedTensor:
    """Symmetric per-channel quantization along ``axis`` (output-channel
    scales, the standard for conv weights)."""
    spec = int_spec(precision)
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        raise CalibrationError("per-channel quantization needs >=1 dim")
    axis = axis % arr.ndim
    moved = np.moveaxis(arr, axis, 0)
    channels = moved.shape[0]
    flat = moved.reshape(channels, -1)
    scales = np.empty(channels, dtype=np.float64)
    codes = np.empty_like(flat, dtype=np.int64)
    for channel in range(channels):
        if percentile is None:
            calib = calibrate_minmax(flat[channel])
        else:
            calib = calibrate_percentile(flat[channel], percentile)
        quantizer = SymmetricQuantizer.from_threshold(spec, calib.threshold)
        scales[channel] = quantizer.scale
        codes[channel] = quantizer.quantize(flat[channel])
    data = np.moveaxis(codes.reshape(moved.shape), 0, axis)
    return QuantizedTensor(data=data, spec=spec, scale=scales, axis=axis)


def fake_quantize(
    values: np.ndarray,
    precision: "int | str | IntSpec",
    percentile: float | None = None,
) -> np.ndarray:
    """Quantize-dequantize round trip (simulated quantization for the
    Fig. 1 accuracy study)."""
    qt = quantize_per_tensor(values, precision, percentile)
    return qt.dequantize()
