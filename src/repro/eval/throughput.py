"""Iso-area throughput analysis (the paper's Sec. V-D and Fig. 9).

The paper's metric: at equal silicon area, how many more tub PE cells fit
than binary cells?  Since both arrays generate k partial sums per "issue"
(one cycle binary, m cycles tub — with the same m assumed for all tub
copies), the iso-area *throughput* improvement equals the area ratio
``binary_area / tub_area``.  Fig. 9 extends this by fitting the area-ratio
trend over n and projecting to n = 65536.

:func:`measured_layer_throughput` complements the analytic view with
*simulated* throughput from the burst-level engine (``mode="burst"``),
which makes full-scale measured MACs/cycle numbers cheap enough for the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataflowError, SynthesisError


def iso_area_improvement(binary_area: float, tub_area: float) -> float:
    """Throughput improvement at iso-area (the paper's definition)."""
    if binary_area <= 0 or tub_area <= 0:
        raise SynthesisError("areas must be positive")
    return binary_area / tub_area


@dataclass(frozen=True)
class ScalingFit:
    """Log-log linear fit of the improvement trend over n.

    improvement(n) ~= exp(intercept) * n^exponent
    """

    exponent: float
    intercept: float

    def predict(self, n: int) -> float:
        return float(np.exp(self.intercept) * n**self.exponent)


def fit_improvement_scaling(
    n_values: "list[int] | np.ndarray",
    improvements: "list[float] | np.ndarray",
) -> ScalingFit:
    """Fit ``log(improvement) = intercept + exponent * log(n)``."""
    n_values = np.asarray(n_values, dtype=np.float64)
    improvements = np.asarray(improvements, dtype=np.float64)
    if n_values.size < 2:
        raise SynthesisError("need at least two points to fit scaling")
    if np.any(n_values <= 0) or np.any(improvements <= 0):
        raise SynthesisError("scaling fit needs positive values")
    exponent, intercept = np.polyfit(
        np.log(n_values), np.log(improvements), 1
    )
    return ScalingFit(exponent=float(exponent), intercept=float(intercept))


def project_improvement(
    n_values: "list[int]",
    improvements: "list[float]",
    target_n: int,
) -> float:
    """Fig. 9's red-dotted-line projection: extrapolate the fitted trend
    to a large n (the paper projects n = 65536)."""
    return fit_improvement_scaling(n_values, improvements).predict(target_n)


def images_per_million_cycles(images: int, cycles: int) -> float:
    """Network-level throughput normalisation used by the batched
    runtime benchmark (``results/BENCH_networks.json``): how many whole
    images the conv pipeline finishes per million core cycles.

    Raises:
        DataflowError: on negative inputs or ``cycles == 0`` — a
            zero-cycle run is an accounting bug upstream, and clamping
            it would report arbitrarily inflated throughput.
    """
    if images < 0 or cycles < 0:
        raise DataflowError("images and cycles must be non-negative")
    if cycles == 0:
        raise DataflowError(
            "cycles must be positive to normalise throughput "
            "(zero-cycle runs indicate a cycle-accounting bug)"
        )
    return images * 1e6 / cycles


def requests_per_second(requests: int, seconds: float) -> float:
    """Wall-clock serving throughput used by the sharded runtime
    benchmark (``results/BENCH_serving.json``): completed single-image
    requests per second of host time.

    Raises:
        DataflowError: on negative inputs or ``seconds == 0`` — a
            zero-duration measurement carries no rate information.
    """
    if requests < 0 or seconds < 0:
        raise DataflowError("requests and seconds must be non-negative")
    if seconds == 0:
        raise DataflowError(
            "seconds must be positive to compute a request rate"
        )
    return requests / seconds


@dataclass(frozen=True)
class MeasuredThroughput:
    """Simulated throughput of one layer on one engine.

    Attributes:
        engine: "tempus" or "binary".
        cycles: total simulated cycles.
        macs: useful multiply-accumulates in the layer.
        gated_cell_cycles: clock-gated (idle/silent) cell-cycles observed.
    """

    engine: str
    cycles: int
    macs: int
    gated_cell_cycles: int

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / max(self.cycles, 1)


def measured_layer_throughput(
    config,
    activations: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    engine: str = "tempus",
    mode: str = "burst",
) -> MeasuredThroughput:
    """Run one layer through a simulated engine and report throughput.

    ``engine`` is any registered compute backend
    (:func:`repro.runtime.backends.registered_backends`).  Defaults to
    the vectorized burst engine, which is bit-identical to the
    tick-level simulation, so the numbers are *measured* (per-atom burst
    timing, gating statistics included) rather than analytic — yet fast
    enough for full-scale layers.  The gemm backends have no simulation
    modes and accept only ``mode="fast"``.
    """
    # Imported here so this analysis module stays importable without the
    # core packages in docs-only contexts.
    from repro.runtime.backends import get_backend

    core = get_backend(engine).make_core(config, None, mode)
    result = core.run_layer(activations, weights, stride, padding)
    return MeasuredThroughput(
        engine=engine,
        cycles=result.cycles,
        macs=result.macs,
        gated_cell_cycles=result.gated_cell_cycles,
    )
