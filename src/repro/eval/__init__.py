"""Evaluation harness: the paper's reported numbers, comparison reports,
iso-area throughput math, and one runnable driver per table/figure."""

from repro.eval.experiments import EXPERIMENTS, ExperimentResult, run_experiment
from repro.eval.report import Comparison, comparison_table
from repro.eval.throughput import (
    iso_area_improvement,
    project_improvement,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "Comparison",
    "comparison_table",
    "iso_area_improvement",
    "project_improvement",
]
