"""The paper's reported numbers, transcribed as data.

Every benchmark prints its measured values next to these so the
paper-vs-reproduction comparison is mechanical.  Units follow the paper's
tables; note Table II prints "µm²" but the magnitudes are mm² (a 16-lane
INT8 MAC cell cannot occupy 0.0056 µm² in 45nm) — we treat those columns
as mm², as Fig. 4/9 cross-checks confirm.
"""

from __future__ import annotations

#: Table I — word sparsity (% zero weights) of INT8-quantized CNNs.
TABLE1_WORD_SPARSITY = {
    "MobileNetV2": 2.25,
    "MobileNetV3": 9.52,
    "GoogleNet": 1.91,
    "InceptionV3": 1.99,
    "ShuffleNetV3": 1.43,
    "ResNet18": 2.043,
    "ResNet50": 2.45,
    "ResNeXt101": 2.64,
}

#: Table II — post-synthesis single PE cell (k=1), NanGate45 @ 250 MHz.
#: {(precision, n): (binary, tub, improvement %)}; areas in mm²
#: (see module docstring), powers in mW.
TABLE2_CELL_AREA_MM2 = {
    ("INT4", 16): (0.0022, 0.0006, 71.89),
    ("INT4", 256): (0.0371, 0.0046, 87.53),
    ("INT4", 1024): (0.1462, 0.0171, 88.30),
    ("INT8", 16): (0.0056, 0.0011, 80.15),
    ("INT8", 256): (0.1063, 0.0093, 91.24),
    ("INT8", 1024): (0.4334, 0.0355, 91.81),
}
TABLE2_CELL_POWER_MW = {
    ("INT4", 16): (0.09, 0.06, 25.86),
    ("INT4", 256): (1.03, 0.19, 81.74),
    ("INT4", 1024): (3.98, 0.51, 87.25),
    ("INT8", 16): (0.20, 0.088, 54.72),
    ("INT8", 256): (3.00, 0.32, 89.35),
    ("INT8", 1024): (12.20, 1.06, 91.28),
}

#: Fig. 4 — 16x16 arrays.  Binary INT8: 0.09 mm² / 3.8 mW; tub: 0.018 mm² /
#: 1.42 mW.  INT4 powers are back-derived from the Sec. V-C energies
#: (7.48 pJ / 4 ns and 17.76 pJ / (4 cyc x 4 ns)).
FIG4_ARRAY_16X16 = {
    "INT8": {
        "binary_area_mm2": 0.09,
        "tub_area_mm2": 0.018,
        "binary_power_mw": 3.8,
        "tub_power_mw": 1.42,
        "area_reduction_pct": 75.0,
        "power_reduction_pct": 62.0,
    },
    "INT4": {
        "binary_area_mm2": None,
        "tub_area_mm2": None,
        "binary_power_mw": 1.87,
        "tub_power_mw": 1.11,
        "area_reduction_pct": 80.0,
        "power_reduction_pct": 41.0,
    },
}

#: Fig. 5 — entire CMAC unit vs PCU (16 x n), INT8 headline improvements.
FIG5_UNIT_IMPROVEMENT = {
    "area_reduction_pct": 59.3,
    "power_reduction_pct": 15.3,
}

#: Table III — post-P&R, 16x4 INT4, 70% utilization.
TABLE3_PNR = {
    "CMAC": {"area_mm2": 0.0361, "power_mw": 10.7013},
    "Tempus": {"area_mm2": 0.0168, "power_mw": 6.1146},
    "area_reduction_pct": 53.0,
    "power_reduction_pct": 44.0,
}

#: Abstract headline for the P&R'd PCU (INT4 16x4).
PNR_HEADLINE = {"area_mm2": 0.017, "power_mw": 6.2}

#: Sec. V-C — workload-dependent latency and energy (16x16 array).
SECVC_WORKLOAD = {
    "MobileNetV2": {
        "mean_burst_cycles": 33,
        "tub_energy_pj": 187.0,
        "mean_silent_pes": 6.0,
    },
    "ResNeXt101": {
        "mean_burst_cycles": 31,
        "tub_energy_pj": 176.0,
        "mean_silent_pes": 2.0,
    },
}
SECVC_INT8 = {
    "worst_case_cycles": 64,
    "binary_energy_pj": 15.0,
    "energy_gap": 11.7,
}
SECVC_INT4 = {
    "worst_case_cycles": 4,
    "binary_energy_pj": 7.48,
    "tub_energy_pj": 17.76,
    "energy_gap": 2.3,
}

#: Sec. V-D — iso-area throughput for 16x16 arrays.
SECVD_ISO_AREA = {"INT8": 5.0, "INT4": 4.0}

#: Fig. 9 — single-cell iso-area throughput projected to n = 65536.
FIG9_PROJECTION = {"INT8": 26.0, "INT4": 18.0}

#: Fig. 1 — quantized training accuracy vs FP32 (source: Jain et al.,
#: "Trained Quantization Thresholds", MLSys 2020).  Approximate Top-1
#: accuracies (%) transcribed from that work for reference; the figure's
#: takeaway is the small FP32 -> INT4 drop.
FIG1_REFERENCE_ACCURACY = {
    "MobileNetV2": {"FP32": 71.9, "INT8": 71.8, "INT4": 67.8},
    "ResNet50": {"FP32": 76.9, "INT8": 76.5, "INT4": 74.2},
    "InceptionV3": {"FP32": 78.0, "INT8": 78.2, "INT4": 75.5},
    "VGG16": {"FP32": 71.6, "INT8": 71.5, "INT4": 70.2},
}

#: Fixed operating point used throughout the paper's evaluation.
CLOCK_MHZ = 250.0
CLOCK_PERIOD_NS = 4.0
TECHNOLOGY = "NanGate45 (45nm CMOS)"
PNR_UTILIZATION = 0.70
