"""Schema check for the ``results/BENCH_*.json`` artifacts.

Every benchmark driver in this repo writes a JSON artifact; CI (and
the tier-1 suite) verify that each one parses and that its records
normalize to the common benchmark-record fields::

    net        — zoo model (or layer) the record measures
    backend    — compute backend / engine the record ran on
    precision  — precision profile the record ran at
    cycles     — simulated conv cycles of the record

:func:`normalize_records` knows every artifact kind's layout and flattens
it into those records, so downstream tooling (dashboards, regression
diffing) reads one shape regardless of which driver produced the file.
``python -m repro check-results [dir]`` runs :func:`check_results_dir`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import DataflowError

#: Fields every normalized benchmark record carries.
COMMON_FIELDS = ("net", "backend", "precision", "cycles")


def _record(net, backend, precision, cycles) -> dict:
    record = {
        "net": str(net),
        "backend": str(backend),
        "precision": str(precision),
        "cycles": int(cycles),
    }
    if record["cycles"] < 0:
        raise DataflowError(f"negative cycle count in record {record}")
    return record


def _check_host_speed(section: dict) -> None:
    """Validate the optional raw-speed section of a network payload:
    a before/after host-throughput pair, a positive speedup and a
    fully-true fused-identity matrix."""
    for label in ("before", "after"):
        point = section[label]
        if float(point["host_images_per_second"]) <= 0.0:
            raise DataflowError(
                f"host_speed.{label}: host_images_per_second must "
                "be positive"
            )
    if float(section["host_speedup"]) <= 0.0:
        raise DataflowError("host_speed: host_speedup must be positive")
    if not section["bit_identical"]:
        raise DataflowError(
            "host_speed: before/after pair is not bit-identical"
        )
    for backend, row in section["fused_identity"].items():
        for precision, identical in row.items():
            if not identical:
                raise DataflowError(
                    f"host_speed: fused executor diverged on "
                    f"{backend}/{precision}"
                )


def _check_disk_cache(totals: dict) -> None:
    for key in ("disk_hits", "disk_misses", "disk_writes"):
        if int(totals[key]) < 0:
            raise DataflowError(
                f"disk_cache_totals: negative counter {key}"
            )


def _network_records(payload: dict) -> list:
    precision = payload.get("precision_profile", "int8")
    records = []
    for model in payload["models"]:
        for backend, stats in model["engines"].items():
            records.append(
                _record(
                    model["model"], backend, precision,
                    stats["conv_cycles"],
                )
            )
    if "host_speed" in payload:
        _check_host_speed(payload["host_speed"])
    return records


def _serving_records(payload: dict) -> list:
    precision = payload.get("precision_profile", "int8")
    backend = payload.get("engine", "tempus")
    transport = payload.get("transport", "pickle")
    if transport not in ("pickle", "shm"):
        raise DataflowError(
            f"serving payload carries unknown transport {transport!r}"
        )
    if "disk_cache_totals" in payload:
        _check_disk_cache(payload["disk_cache_totals"])
    records = []
    for model in payload["models"]:
        for sweep in model["workers"]:
            records.append(
                _record(
                    model["model"], backend, precision,
                    sweep["conv_cycles"],
                )
            )
    return records


def _precision_records(payload: dict) -> list:
    records = []
    for model in payload["models"]:
        for entry in model["precisions"]:
            for backend, stats in entry["engines"].items():
                records.append(
                    _record(
                        model["model"], backend, entry["precision"],
                        stats["conv_cycles"],
                    )
                )
    return records


def _backend_records(payload: dict) -> list:
    records = []
    for model in payload["models"]:
        for entry in model["precisions"]:
            for backend, stats in entry["backends"].items():
                records.append(
                    _record(
                        entry["net"], backend, entry["precision"],
                        stats["conv_cycles"],
                    )
                )
    return records


def _fault_records(payload: dict) -> list:
    backend = payload.get("engine", "tempus")
    precision = payload.get("precision_profile", "int8")
    records = []
    for model in payload["models"]:
        for point in model["points"]:
            if not point["completed"]:
                raise DataflowError(
                    f"fault-tolerance record for {model['model']} at "
                    f"rate {point['fault_rate']} reports an aborted "
                    "stream"
                )
            records.append(
                _record(
                    model["model"], backend, precision,
                    point["conv_cycles"],
                )
            )
    return records


def _pareto_records(payload: dict) -> list:
    # The autotuner's contract is structural, not just field-level:
    # the frontier must be a subset of the explored points with no
    # dominated (or SLO-violating) entry — a dominated "frontier"
    # point means the pruning is broken, so the artifact is rejected.
    from repro.tune.autotune import OBJECTIVES, dominates

    points = payload["points"]
    frontier = payload["frontier"]
    if not frontier:
        raise DataflowError(
            "pareto artifact carries an empty frontier"
        )
    explored = {
        tuple(point[objective] for objective in OBJECTIVES)
        for point in points
    }
    for point in frontier:
        if not point["meets_slo"]:
            raise DataflowError(
                f"frontier point {point['label']} violates the "
                f"recorded SLO {payload['slo']}"
            )
        vector = tuple(
            point[objective] for objective in OBJECTIVES
        )
        if vector not in explored:
            raise DataflowError(
                f"frontier point {point['label']} is not among the "
                "explored points"
            )
        for other in frontier:
            if other is not point and dominates(other, point):
                raise DataflowError(
                    f"frontier point {point['label']} is dominated "
                    f"by {other['label']} — the Pareto pruning is "
                    "broken"
                )
    return [
        _record(
            point["net"],
            point["backend"],
            point["precision"],
            point["cycles"],
        )
        for point in points
    ]


def _llm_records(payload: dict) -> list:
    records = []
    for entry in payload["records"]:
        for flag in (
            "bit_identical",
            "sharded_bit_identical",
            "matvec_parity",
        ):
            if not entry[flag]:
                raise DataflowError(
                    f"llm record {entry['backend']}/"
                    f"{entry['precision']}: {flag} is false"
                )
        per_token = entry["per_token"]
        if len(per_token) != int(entry["tokens"]):
            raise DataflowError(
                f"llm record {entry['backend']}/{entry['precision']}: "
                f"expected {entry['tokens']} per-token points, got "
                f"{len(per_token)}"
            )
        series = [int(point["conv_cycles"]) for point in per_token]
        if any(
            later < earlier
            for earlier, later in zip(series, series[1:])
        ):
            raise DataflowError(
                f"llm record {entry['backend']}/{entry['precision']}: "
                "per-token cycles are not monotone nondecreasing — "
                "a growing prefix cannot cost fewer cycles"
            )
        if int(entry["conv_cycles"]) != series[-1]:
            raise DataflowError(
                f"llm record {entry['backend']}/{entry['precision']}: "
                "conv_cycles does not match the final decode step"
            )
        for percentile in ("p50", "p90", "p99"):
            if float(entry["latency_cycles"][percentile]) < 0.0:
                raise DataflowError(
                    f"llm record {entry['backend']}/"
                    f"{entry['precision']}: negative latency "
                    f"percentile {percentile}"
                )
        records.append(
            _record(
                entry["net"], entry["backend"], entry["precision"],
                entry["conv_cycles"],
            )
        )
    return records


def _load_records(payload: dict) -> list:
    records = []
    for entry in payload["records"]:
        point = (
            f"{entry['net']}/{entry['backend']}/"
            f"{entry['workers']}w"
        )
        for leg, identical in entry["bit_identical"].items():
            if not identical:
                raise DataflowError(
                    f"load record {point}: gateway stream under "
                    f"{leg} arrivals diverged from the reference"
                )
        if float(entry["sustained_rps"]) <= 0.0:
            raise DataflowError(
                f"load record {point}: sustained rate must be "
                "positive"
            )
        latency = entry["latency_ms"]
        for percentile in ("p50", "p90", "p99"):
            if float(latency[percentile]) < 0.0:
                raise DataflowError(
                    f"load record {point}: negative latency "
                    f"percentile {percentile}"
                )
        if not (
            float(latency["p50"])
            <= float(latency["p90"])
            <= float(latency["p99"])
        ):
            raise DataflowError(
                f"load record {point}: latency percentiles are not "
                "monotone (p50 <= p90 <= p99)"
            )
        if float(latency["p99"]) > float(entry["slo_p99_ms"]):
            raise DataflowError(
                f"load record {point}: the recorded run misses its "
                "own p99 SLO"
            )
        decomposition = sum(
            float(entry["phases_ms"][phase]["mean"])
            for phase in (
                "queue_wait", "dispatch", "compute", "reassembly"
            )
        )
        # Mean phases vs mean total: phases never overlap and gaps
        # are unattributed, so the means must sum within the total
        # (tolerance for float round-trip through JSON).
        if decomposition > float(latency["mean"]) * (1 + 1e-9) + 1e-9:
            raise DataflowError(
                f"load record {point}: phase decomposition "
                f"({decomposition:.4f} ms) sums past the mean "
                f"total latency ({latency['mean']:.4f} ms)"
            )
        for side in ("synchronous_rps", "pipelined_rps"):
            if float(entry[side]) <= 0.0:
                raise DataflowError(
                    f"load record {point}: {side} must be positive"
                )
        records.append(
            _record(
                entry["net"], entry["backend"], entry["precision"],
                entry["cycles"],
            )
        )
    headline = payload["pipelining"]
    if float(headline["speedup"]) <= 0.0:
        raise DataflowError(
            "load artifact: pipelining headline speedup must be "
            "positive"
        )
    return records


def _engine_speed_records(payload: list) -> list:
    # Pre-schema trajectory entries carry the layer geometry but no
    # explicit net/backend/precision; the microbenchmark has always
    # timed one fixed INT8 layer on the tempus engine.
    return [
        _record(
            entry.get("net", "microbench_layer"),
            entry.get("backend", "tempus"),
            entry.get("precision", "int8"),
            entry["simulated_cycles"],
        )
        for entry in payload
    ]


#: Artifact name -> normalizer.  New benchmark artifacts must register
#: here (the directory check refuses unknown BENCH files).
NORMALIZERS = {
    "BENCH_networks.json": _network_records,
    "BENCH_serving.json": _serving_records,
    "BENCH_precision.json": _precision_records,
    "BENCH_backends.json": _backend_records,
    "BENCH_engine.json": _engine_speed_records,
    "BENCH_llm.json": _llm_records,
    "BENCH_load.json": _load_records,
    "BENCH_faults.json": _fault_records,
    "BENCH_pareto.json": _pareto_records,
}


def normalize_records(name: str, payload) -> list:
    """Flatten one artifact's payload into common benchmark records.

    Args:
        name: artifact file name (e.g. ``"BENCH_networks.json"``).
        payload: the parsed JSON document.

    Raises:
        DataflowError: unknown artifact name, or a record missing any
            of :data:`COMMON_FIELDS`.
    """
    normalizer = NORMALIZERS.get(name)
    if normalizer is None:
        raise DataflowError(
            f"unknown benchmark artifact {name!r}; register a "
            "normalizer in repro.eval.results_schema.NORMALIZERS"
        )
    try:
        records = normalizer(payload)
    except (KeyError, TypeError, AttributeError, ValueError) as error:
        raise DataflowError(
            f"{name}: payload does not match the expected layout "
            f"({error!r})"
        ) from error
    if not records:
        raise DataflowError(f"{name}: artifact carries no records")
    return records


def check_results_dir(path: "str | Path" = "results") -> dict:
    """Validate every ``BENCH_*.json`` under ``path``.

    Returns ``{artifact name: normalized records}``; raises
    :class:`DataflowError` on the first malformed artifact.
    """
    directory = Path(path)
    if not directory.is_dir():
        raise DataflowError(f"results directory {path!r} does not exist")
    artifacts = sorted(directory.glob("BENCH_*.json"))
    if not artifacts:
        raise DataflowError(f"no BENCH_*.json artifacts under {path!r}")
    checked = {}
    for artifact in artifacts:
        try:
            payload = json.loads(artifact.read_text())
        except json.JSONDecodeError as error:
            raise DataflowError(
                f"{artifact.name}: not valid JSON ({error})"
            ) from error
        checked[artifact.name] = normalize_records(artifact.name, payload)
    return checked


def render_check(checked: dict) -> str:
    """One summary line per artifact."""
    lines = []
    for name, records in checked.items():
        backends = sorted({record["backend"] for record in records})
        lines.append(
            f"{name}: {len(records)} records ok "
            f"(backends: {', '.join(backends)})"
        )
    return "\n".join(lines)
