"""Paper-vs-measured comparison rendering."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.tables import format_table


@dataclass(frozen=True)
class Comparison:
    """One metric compared against the paper.

    Attributes:
        metric: human-readable metric name.
        paper: the paper's reported value (None if not reported).
        measured: our reproduction's value.
        unit: unit label.
    """

    metric: str
    paper: float | None
    measured: float
    unit: str = ""

    @property
    def ratio(self) -> float | None:
        """measured / paper (None when the paper gives no number)."""
        if self.paper is None or self.paper == 0:
            return None
        return self.measured / self.paper

    def within_factor(self, factor: float) -> bool:
        """True when measured is within [paper/factor, paper*factor]."""
        ratio = self.ratio
        if ratio is None:
            return True
        return 1.0 / factor <= ratio <= factor


def comparison_table(
    comparisons: list[Comparison], title: str | None = None
) -> str:
    """Render a paper-vs-measured table with a ratio column."""
    rows = []
    for comparison in comparisons:
        ratio = comparison.ratio
        rows.append(
            (
                comparison.metric,
                "-" if comparison.paper is None else comparison.paper,
                comparison.measured,
                comparison.unit,
                "-" if ratio is None else f"{ratio:.2f}x",
            )
        )
    return format_table(
        ["metric", "paper", "measured", "unit", "measured/paper"],
        rows,
        title=title,
    )
