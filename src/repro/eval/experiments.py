"""Experiment drivers: one runnable per table/figure of the paper.

Each driver returns an :class:`ExperimentResult` carrying the measured
rows, paper-vs-measured comparisons, notes, and any artifacts written (CSV
series behind the figures).  The benchmark harness under ``benchmarks/``
executes these drivers and prints their reports; tests run them with
``quick=True`` to keep runtimes small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.hwmodel import (
    pcu_unit_netlist,
    tub_array_netlist,
    tub_pe_cell_netlist,
)
from repro.core.latency import worst_case_cycles
from repro.core.tempus_core import TempusCore
from repro.core.tub_multiplier import tub_multiply
from repro.eval import paper
from repro.eval.report import Comparison, comparison_table
from repro.eval.throughput import iso_area_improvement, project_improvement
from repro.gemm import BinaryGemm, TubGemm, TuGemm
from repro.hw.pnr import place_and_route
from repro.hw.synthesis import synthesize
from repro.models.accuracy import (
    SmallCnn,
    make_synthetic_dataset,
    quantization_sweep,
)
from repro.models.weights import load_quantized_model
from repro.models.zoo import MODEL_NAMES, TABLE1_LABELS
from repro.nvdla.config import CoreConfig
from repro.nvdla.conv_core import ConvolutionCore
from repro.nvdla.hwmodel import (
    binary_array_netlist,
    binary_pe_cell_netlist,
    cmac_unit_netlist,
)
from repro.profiling.energy import workload_energy
from repro.profiling.magnitude import profile_model_magnitudes
from repro.profiling.sparsity import profile_model_sparsity
from repro.unary.encoding import PureUnaryCode, TwosUnaryCode
from repro.utils.intrange import INT4, INT8, int_spec
from repro.utils.rng import make_rng
from repro.utils.tables import ascii_bar_chart, format_table, write_csv


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment driver.

    Attributes:
        experiment_id: registry key ("table2", "fig7", ...).
        title: headline (matches the paper's table/figure caption).
        headers / rows: the measured table.
        comparisons: paper-vs-measured metric pairs.
        notes: free-form observations (fidelity caveats, trends).
        extra_text: pre-rendered blocks (traces, bar charts, layouts).
        artifacts: files written (CSV series).
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    comparisons: tuple[Comparison, ...] = ()
    notes: tuple[str, ...] = ()
    extra_text: str = ""
    artifacts: tuple[Path, ...] = ()

    def render(self) -> str:
        blocks = [
            format_table(
                list(self.headers),
                [list(row) for row in self.rows],
                title=f"[{self.experiment_id}] {self.title}",
            )
        ]
        if self.comparisons:
            blocks.append(
                comparison_table(
                    list(self.comparisons), title="paper vs measured"
                )
            )
        if self.extra_text:
            blocks.append(self.extra_text)
        for note in self.notes:
            blocks.append(f"note: {note}")
        if self.artifacts:
            blocks.append(
                "artifacts: "
                + ", ".join(str(path) for path in self.artifacts)
            )
        return "\n\n".join(blocks)


def _artifact_dir(path: "str | Path | None") -> Path:
    base = Path(path) if path is not None else Path("results")
    base.mkdir(parents=True, exist_ok=True)
    return base


# ----------------------------------------------------------------------
# Fig. 1 — quantization accuracy
# ----------------------------------------------------------------------
def fig1_quant_accuracy(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Accuracy of the NumPy CNN at FP32 and INT8..INT2 (Fig. 1's
    minimal-degradation story on our offline substrate)."""
    dataset = make_synthetic_dataset(
        train_per_class=40 if quick else 100,
        test_per_class=15 if quick else 30,
    )
    model = SmallCnn()
    model.train(dataset, epochs=3 if quick else 8)
    sweep = quantization_sweep(
        model, dataset, widths=(8, 4) if quick else (8, 6, 5, 4, 3, 2)
    )
    rows = [
        (entry.precision, round(entry.accuracy * 100, 1),
         round(entry.drop * 100, 1))
        for entry in sweep
    ]
    # Close the loop: run the INT8-compiled network on the simulated
    # accelerator itself (integer conv + SDP + PDP pipeline).
    from repro.models.deploy import compile_small_cnn, evaluate_on_accelerator

    compiled = compile_small_cnn(model, dataset, precision=8)
    accelerated = evaluate_on_accelerator(
        compiled,
        dataset.test_x,
        dataset.test_y,
        limit=30 if quick else 120,
        engine="tempus",
    )
    baseline = sweep[0].accuracy
    rows.append(
        (
            "INT8 on Tempus Core",
            round(accelerated * 100, 1),
            round((baseline - accelerated) * 100, 1),
        )
    )
    rows = tuple(rows)
    reference_rows = [
        (name, *(values.get(k, "-") for k in ("FP32", "INT8", "INT4")))
        for name, values in paper.FIG1_REFERENCE_ACCURACY.items()
    ]
    extra = format_table(
        ["model", "FP32", "INT8", "INT4"],
        reference_rows,
        title="paper Fig. 1 source accuracies (Jain et al., reference)",
    )
    int4 = next((e for e in sweep if e.precision == "INT4"), None)
    notes = [
        "reproduced shape: INT8..INT4 within a few points of FP32, cliff "
        "below INT4",
    ]
    comparisons = []
    if int4 is not None:
        comparisons.append(
            Comparison(
                "INT4 accuracy drop (points)",
                paper=4.0,  # typical FP32->INT4 drop in the Fig. 1 source
                measured=round(int4.drop * 100, 2),
                unit="%",
            )
        )
    out = _artifact_dir(artifact_dir)
    artifact = write_csv(
        out / "fig1_quant_accuracy.csv",
        ["precision", "accuracy_pct", "drop_pct"],
        rows,
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Quantization accuracy vs precision (synthetic substrate)",
        headers=("precision", "accuracy %", "drop vs FP32"),
        rows=rows,
        comparisons=tuple(comparisons),
        notes=tuple(notes),
        extra_text=extra,
        artifacts=(artifact,),
    )


# ----------------------------------------------------------------------
# Table I — word sparsity
# ----------------------------------------------------------------------
def table1_word_sparsity(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Zero-weight percentage of the eight INT8 model-zoo CNNs."""
    scale = 0.25 if quick else 1.0
    names = MODEL_NAMES[:3] if quick else MODEL_NAMES
    rows = []
    comparisons = []
    for name in names:
        model = load_quantized_model(name, scale=scale)
        label = TABLE1_LABELS[name]
        measured = model.word_sparsity() * 100.0
        reported = paper.TABLE1_WORD_SPARSITY[label]
        rows.append((label, reported, round(measured, 3)))
        comparisons.append(
            Comparison(
                f"{label} word sparsity", reported, round(measured, 3), "%"
            )
        )
    out = _artifact_dir(artifact_dir)
    artifact = write_csv(
        out / "table1_word_sparsity.csv",
        ["model", "paper_pct", "measured_pct"],
        rows,
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Word sparsity of INT8-quantized CNNs",
        headers=("model", "paper %", "measured %"),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "weights are synthetic mixtures calibrated per model "
            "(DESIGN.md section 3); sparsity is the calibration target",
        ),
        artifacts=(artifact,),
    )


# ----------------------------------------------------------------------
# Fig. 2 — tub multiplier dataflow
# ----------------------------------------------------------------------
def fig2_tub_dataflow(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Cycle-by-cycle trace of INT4 tub multiplications."""
    del quick  # trivially fast either way
    examples = [(5, 6), (-3, 7), (7, -8), (4, 0)]
    traces = [tub_multiply(a, w, spec=INT4) for a, w in examples]
    rows = tuple(
        (
            trace.activation,
            trace.weight,
            trace.product,
            trace.cycles,
            "yes" if trace.product == trace.activation * trace.weight
            else "NO",
        )
        for trace in traces
    )
    extra = "\n\n".join(trace.render() for trace in traces[:2])
    return ExperimentResult(
        experiment_id="fig2",
        title="INT4 tub multiplier dataflow (2s-unary weight streams)",
        headers=("activation", "weight", "product", "cycles", "exact"),
        rows=rows,
        notes=(
            "cycles = ceil(|weight| / 2); a zero weight is a silent lane "
            "(0 cycles)",
        ),
        extra_text=extra,
    )


# ----------------------------------------------------------------------
# Fig. 3 — NVDLA integration / dataflow compliance
# ----------------------------------------------------------------------
def fig3_integration(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Run the same layer through the binary CC and Tempus Core
    (burst-level simulation, bit-identical to tick-level) and check
    bit-exact agreement."""
    rng = make_rng("fig3")
    size = 6 if quick else 10
    config = CoreConfig(k=8, n=8, precision=INT8)
    spec = config.precision
    activations = spec.random_array(rng, (8, size, size))
    weights = spec.random_array(rng, (8, 8, 3, 3))
    binary = ConvolutionCore(config, mode="burst").run_layer(
        activations, weights, stride=1, padding=1
    )
    tempus = TempusCore(config, mode="burst").run_layer(
        activations, weights, stride=1, padding=1
    )
    exact = bool(np.array_equal(binary.output, tempus.output))
    rows = (
        ("NVDLA CC (binary)", binary.cycles, binary.atoms, "-"),
        (
            "Tempus Core (tub)",
            tempus.cycles,
            tempus.atoms,
            f"{tempus.cycles / binary.cycles:.1f}x",
        ),
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Drop-in integration: identical dataflow, identical outputs",
        headers=("engine", "cycles", "atoms", "latency vs binary"),
        rows=rows,
        notes=(
            f"outputs bit-exact: {exact}",
            "same CSC schedule and CACC; only the MAC array differs "
            "(multi-cycle tub bursts via the added handshake)",
            "simulated with the vectorized burst engine (mode='burst'), "
            "bit-identical to tick-level mode='cycle' at NumPy speed",
        ),
    )


# ----------------------------------------------------------------------
# Table II — single PE cell synthesis
# ----------------------------------------------------------------------
def table2_pe_cell_synthesis(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Binary vs tub PE cell area/power across precisions and n."""
    n_values = (16, 256) if quick else (16, 256, 1024)
    rows = []
    comparisons = []
    for precision in (INT4, INT8):
        for n in n_values:
            binary = synthesize(binary_pe_cell_netlist(precision, n))
            tub = synthesize(tub_pe_cell_netlist(precision, n))
            area_red = 100 * (1 - tub.area_um2 / binary.area_um2)
            power_red = 100 * (
                1 - tub.total_power_mw / binary.total_power_mw
            )
            key = (precision.name, n)
            paper_area = paper.TABLE2_CELL_AREA_MM2.get(key)
            paper_power = paper.TABLE2_CELL_POWER_MW.get(key)
            rows.append(
                (
                    precision.name,
                    n,
                    round(binary.area_mm2, 4),
                    round(tub.area_mm2, 4),
                    round(area_red, 1),
                    round(binary.total_power_mw, 3),
                    round(tub.total_power_mw, 3),
                    round(power_red, 1),
                )
            )
            if paper_area:
                comparisons.append(
                    Comparison(
                        f"{precision.name} n={n} area improvement",
                        paper_area[2],
                        round(area_red, 1),
                        "%",
                    )
                )
            if paper_power:
                comparisons.append(
                    Comparison(
                        f"{precision.name} n={n} power improvement",
                        paper_power[2],
                        round(power_red, 1),
                        "%",
                    )
                )
    out = _artifact_dir(artifact_dir)
    artifact = write_csv(
        out / "table2_pe_cell.csv",
        [
            "precision",
            "n",
            "binary_area_mm2",
            "tub_area_mm2",
            "area_reduction_pct",
            "binary_power_mw",
            "tub_power_mw",
            "power_reduction_pct",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Single PE cell (k=1): post-synthesis area and power",
        headers=(
            "precision",
            "n",
            "bin area mm2",
            "tub area mm2",
            "area red %",
            "bin power mW",
            "tub power mW",
            "power red %",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "absolute PPA comes from an analytical gate model, not "
            "Design Compiler; the reproduced claims are the orderings "
            "and trends (tub << binary, INT8 advantage > INT4)",
        ),
        artifacts=(artifact,),
    )


# ----------------------------------------------------------------------
# Fig. 4 — 16x16 arrays
# ----------------------------------------------------------------------
def fig4_array16x16(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Area/power of the 16x16 binary vs tub arrays (INT4/INT8)."""
    del quick
    rows = []
    comparisons = []
    chart_labels = []
    chart_values = []
    for precision in (INT8, INT4):
        binary = synthesize(binary_array_netlist(16, 16, precision))
        tub = synthesize(tub_array_netlist(16, 16, precision))
        area_red = 100 * (1 - tub.area_um2 / binary.area_um2)
        power_red = 100 * (1 - tub.total_power_mw / binary.total_power_mw)
        rows.append(
            (
                precision.name,
                round(binary.area_mm2, 4),
                round(tub.area_mm2, 4),
                round(area_red, 1),
                round(binary.total_power_mw, 2),
                round(tub.total_power_mw, 2),
                round(power_red, 1),
            )
        )
        reference = paper.FIG4_ARRAY_16X16[precision.name]
        comparisons.append(
            Comparison(
                f"{precision.name} area reduction",
                reference["area_reduction_pct"],
                round(area_red, 1),
                "%",
            )
        )
        comparisons.append(
            Comparison(
                f"{precision.name} power reduction",
                reference["power_reduction_pct"],
                round(power_red, 1),
                "%",
            )
        )
        chart_labels += [
            f"{precision.name} binary power",
            f"{precision.name} tub power",
        ]
        chart_values += [binary.total_power_mw, tub.total_power_mw]
    extra = ascii_bar_chart(
        chart_labels,
        chart_values,
        title="Fig. 4 (power view), mW at 250 MHz",
    )
    out = _artifact_dir(artifact_dir)
    artifact = write_csv(
        out / "fig4_array16x16.csv",
        [
            "precision",
            "binary_area_mm2",
            "tub_area_mm2",
            "area_reduction_pct",
            "binary_power_mw",
            "tub_power_mw",
            "power_reduction_pct",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="16x16 PE array: post-synthesis power and area",
        headers=(
            "precision",
            "bin area mm2",
            "tub area mm2",
            "area red %",
            "bin power mW",
            "tub power mW",
            "power red %",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        extra_text=extra,
        artifacts=(artifact,),
    )


# ----------------------------------------------------------------------
# Fig. 5 — CMAC unit vs PCU
# ----------------------------------------------------------------------
def fig5_cmac_vs_pcu(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Whole-unit comparison across array widths and precisions."""
    n_values = (4, 16) if quick else (4, 16, 32)
    precisions = (INT8,) if quick else tuple(
        int_spec(width) for width in (2, 4, 8)
    )
    rows = []
    headline = None
    for precision in precisions:
        for n in n_values:
            cmac = synthesize(cmac_unit_netlist(16, n, precision))
            pcu = synthesize(pcu_unit_netlist(16, n, precision))
            area_red = 100 * (1 - pcu.area_um2 / cmac.area_um2)
            power_red = 100 * (
                1 - pcu.total_power_mw / cmac.total_power_mw
            )
            rows.append(
                (
                    precision.name,
                    f"16x{n}",
                    round(cmac.area_mm2, 4),
                    round(pcu.area_mm2, 4),
                    round(area_red, 1),
                    round(cmac.total_power_mw, 2),
                    round(pcu.total_power_mw, 2),
                    round(power_red, 1),
                )
            )
            if precision.name == "INT8" and n == 4:
                headline = (area_red, power_red)
    comparisons = []
    if headline is not None:
        comparisons = [
            Comparison(
                "INT8 unit area improvement",
                paper.FIG5_UNIT_IMPROVEMENT["area_reduction_pct"],
                round(headline[0], 1),
                "%",
            ),
            Comparison(
                "INT8 unit power improvement",
                paper.FIG5_UNIT_IMPROVEMENT["power_reduction_pct"],
                round(headline[1], 1),
                "%",
            ),
        ]
    out = _artifact_dir(artifact_dir)
    artifact = write_csv(
        out / "fig5_cmac_vs_pcu.csv",
        [
            "precision",
            "array",
            "cmac_area_mm2",
            "pcu_area_mm2",
            "area_reduction_pct",
            "cmac_power_mw",
            "pcu_power_mw",
            "power_reduction_pct",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Entire CMAC unit vs PCU across widths and precisions",
        headers=(
            "precision",
            "array",
            "cmac area mm2",
            "pcu area mm2",
            "area red %",
            "cmac power mW",
            "pcu power mW",
            "power red %",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "our unit-level power advantage exceeds the paper's 15.3%: "
            "the paper's DC power report is dominated by unit-level "
            "clock/retiming overhead we model more lightly "
            "(see EXPERIMENTS.md)",
        ),
        artifacts=(artifact,),
    )


# ----------------------------------------------------------------------
# Fig. 6 + Table III — place and route
# ----------------------------------------------------------------------
def fig6_layout(quick: bool = False, artifact_dir=None) -> ExperimentResult:
    """P&R layout density maps for the INT4 16x4 CMAC vs PCU."""
    resolution = 16 if quick else 32
    cmac = place_and_route(
        cmac_unit_netlist(16, 4, INT4), grid_resolution=resolution
    )
    pcu = place_and_route(
        pcu_unit_netlist(16, 4, INT4), grid_resolution=resolution
    )
    rows = (
        (
            "CMAC",
            round(cmac.die_area_mm2, 4),
            round(cmac.floorplan.utilization, 3),
            round(cmac.routing.total_wirelength_um, 0),
            round(cmac.total_power_mw, 2),
        ),
        (
            "PCU",
            round(pcu.die_area_mm2, 4),
            round(pcu.floorplan.utilization, 3),
            round(pcu.routing.total_wirelength_um, 0),
            round(pcu.total_power_mw, 2),
        ),
    )
    extra = "\n\n".join(
        [
            cmac.layout.render("CMAC 16x4 INT4 layout density"),
            pcu.layout.render("PCU 16x4 INT4 layout density"),
        ]
    )
    out = _artifact_dir(artifact_dir)
    artifacts = (
        cmac.layout.to_csv(out / "fig6_cmac_density.csv"),
        pcu.layout.to_csv(out / "fig6_pcu_density.csv"),
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Layout density, INT4 16x4 (both at 70% floorplan "
        "utilization of their own die)",
        headers=(
            "design",
            "die mm2",
            "utilization",
            "wirelength um",
            "power mW",
        ),
        rows=rows,
        notes=(
            "the paper overlays both on one floorplan; the PCU fills "
            "less than half the CMAC's cell area — compare the die areas",
        ),
        extra_text=extra,
        artifacts=artifacts,
    )


def table3_pnr(quick: bool = False, artifact_dir=None) -> ExperimentResult:
    """Post-P&R total area / power, 16x4 INT4."""
    del quick
    cmac = place_and_route(cmac_unit_netlist(16, 4, INT4))
    pcu = place_and_route(pcu_unit_netlist(16, 4, INT4))
    area_red = 100 * (1 - pcu.die_area_mm2 / cmac.die_area_mm2)
    power_red = 100 * (1 - pcu.total_power_mw / cmac.total_power_mw)
    rows = (
        (
            "CMAC Core",
            paper.TABLE3_PNR["CMAC"]["area_mm2"],
            round(cmac.die_area_mm2, 4),
            paper.TABLE3_PNR["CMAC"]["power_mw"],
            round(cmac.total_power_mw, 3),
        ),
        (
            "Tempus Core",
            paper.TABLE3_PNR["Tempus"]["area_mm2"],
            round(pcu.die_area_mm2, 4),
            paper.TABLE3_PNR["Tempus"]["power_mw"],
            round(pcu.total_power_mw, 3),
        ),
    )
    comparisons = (
        Comparison(
            "P&R area reduction",
            paper.TABLE3_PNR["area_reduction_pct"],
            round(area_red, 1),
            "%",
        ),
        Comparison(
            "P&R power reduction",
            paper.TABLE3_PNR["power_reduction_pct"],
            round(power_red, 1),
            "%",
        ),
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Post-place-and-route, 16x4 INT4, 70% utilization",
        headers=(
            "design",
            "paper area mm2",
            "measured area mm2",
            "paper power mW",
            "measured power mW",
        ),
        rows=rows,
        comparisons=comparisons,
        notes=(
            "timing met at 250 MHz for both: "
            f"CMAC {cmac.critical_path_ns:.2f} ns, "
            f"PCU {pcu.critical_path_ns:.2f} ns (4 ns period)",
        ),
    )


# ----------------------------------------------------------------------
# Fig. 7 / Fig. 8 — weight profiling
# ----------------------------------------------------------------------
_PROFILED_MODELS = {
    "mobilenet_v2": "MobileNetV2",
    "resnext101": "ResNeXt101",
}


def fig7_weight_magnitude(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Tile-max weight-magnitude histograms and mean burst latency."""
    scale = 0.25 if quick else 1.0
    rows = []
    comparisons = []
    charts = []
    artifacts = []
    out = _artifact_dir(artifact_dir)
    for name, label in _PROFILED_MODELS.items():
        model = load_quantized_model(name, scale=scale)
        profile = profile_model_magnitudes(model)
        mean_cycles = profile.mean_latency_cycles()
        rows.append(
            (
                label,
                profile.total_tiles,
                round(profile.mean_magnitude(), 1),
                round(mean_cycles, 1),
                worst_case_cycles(model.precision),
            )
        )
        comparisons.append(
            Comparison(
                f"{label} mean burst cycles",
                paper.SECVC_WORKLOAD[label]["mean_burst_cycles"],
                round(mean_cycles, 1),
                "cycles",
            )
        )
        binned = profile.binned_rows(bins=8)
        charts.append(
            ascii_bar_chart(
                [f"max in {bin_label}" for bin_label, _ in binned],
                [count for _, count in binned],
                title=f"{label}: tile-max magnitude distribution",
                value_format="d",
            )
        )
        artifacts.append(
            write_csv(
                out / f"fig7_{name}_magnitude.csv",
                ["magnitude", "frequency"],
                profile.to_rows(),
            )
        )
    return ExperimentResult(
        experiment_id="fig7",
        title="Weight-magnitude profiling, 16x16 max pool",
        headers=(
            "model",
            "tiles",
            "mean tile max",
            "mean burst cycles",
            "worst case",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "2s-unary halves the tile max into the burst length; both "
            "models land near half the worst-case 64 cycles, as in the "
            "paper",
        ),
        extra_text="\n\n".join(charts),
        artifacts=tuple(artifacts),
    )


def fig8_sparsity_profile(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Silent-PE (zero weight per tile) histograms."""
    scale = 0.25 if quick else 1.0
    rows = []
    comparisons = []
    artifacts = []
    out = _artifact_dir(artifact_dir)
    for name, label in _PROFILED_MODELS.items():
        model = load_quantized_model(name, scale=scale)
        profile = profile_model_sparsity(model)
        mean_silent = profile.mean_silent_pes()
        rows.append(
            (
                label,
                profile.total_tiles,
                round(mean_silent, 2),
                round(profile.mean_active_pes(), 1),
                round(profile.word_sparsity * 100, 2),
            )
        )
        comparisons.append(
            Comparison(
                f"{label} mean silent PEs per tile",
                paper.SECVC_WORKLOAD[label]["mean_silent_pes"],
                round(mean_silent, 2),
                "PEs",
            )
        )
        artifacts.append(
            write_csv(
                out / f"fig8_{name}_sparsity.csv",
                ["silent_pes", "tiles"],
                profile.to_rows(),
            )
        )
    return ExperimentResult(
        experiment_id="fig8",
        title="Sparsity profiling: silent PEs per 16x16 tile",
        headers=(
            "model",
            "tiles",
            "mean silent PEs",
            "mean active PEs",
            "word sparsity %",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        artifacts=tuple(artifacts),
    )


# ----------------------------------------------------------------------
# Sec. V-C — workload energy
# ----------------------------------------------------------------------
def secVC_energy(quick: bool = False, artifact_dir=None) -> ExperimentResult:
    """Energy per burst: binary vs tub, workload-dependent + worst case."""
    scale = 0.25 if quick else 1.0
    config8 = CoreConfig(k=16, n=16, precision=INT8)
    config4 = CoreConfig(k=16, n=16, precision=INT4)
    rows = []
    comparisons = []
    for name, label in _PROFILED_MODELS.items():
        model = load_quantized_model(name, scale=scale)
        magnitude = profile_model_magnitudes(model)
        sparsity = profile_model_sparsity(model)
        active_fraction = sparsity.mean_active_pes() / 256.0
        energy = workload_energy(
            label,
            config8,
            burst_cycles=magnitude.mean_latency_cycles(),
            active_fraction=active_fraction,
        )
        rows.append(
            (
                label,
                "INT8",
                round(energy.burst_cycles, 1),
                round(energy.binary_energy_pj, 2),
                round(energy.tub_energy_pj, 2),
                round(energy.tub_energy_silent_adjusted_pj, 2),
                round(energy.energy_gap, 2),
            )
        )
        comparisons.append(
            Comparison(
                f"{label} tub energy",
                paper.SECVC_WORKLOAD[label]["tub_energy_pj"],
                round(energy.tub_energy_pj, 1),
                "pJ",
            )
        )
    worst8 = workload_energy(
        "worst-case", config8, burst_cycles=worst_case_cycles(INT8)
    )
    worst4 = workload_energy(
        "worst-case", config4, burst_cycles=worst_case_cycles(INT4)
    )
    rows.append(
        (
            "worst-case",
            "INT8",
            worst8.burst_cycles,
            round(worst8.binary_energy_pj, 2),
            round(worst8.tub_energy_pj, 2),
            round(worst8.tub_energy_pj, 2),
            round(worst8.energy_gap, 2),
        )
    )
    rows.append(
        (
            "worst-case",
            "INT4",
            worst4.burst_cycles,
            round(worst4.binary_energy_pj, 2),
            round(worst4.tub_energy_pj, 2),
            round(worst4.tub_energy_pj, 2),
            round(worst4.energy_gap, 2),
        )
    )
    comparisons += [
        Comparison(
            "INT8 binary energy",
            paper.SECVC_INT8["binary_energy_pj"],
            round(worst8.binary_energy_pj, 2),
            "pJ",
        ),
        Comparison(
            "INT4 binary energy",
            paper.SECVC_INT4["binary_energy_pj"],
            round(worst4.binary_energy_pj, 2),
            "pJ",
        ),
        Comparison(
            "INT4 tub energy",
            paper.SECVC_INT4["tub_energy_pj"],
            round(worst4.tub_energy_pj, 2),
            "pJ",
        ),
        Comparison(
            "INT4 energy gap",
            paper.SECVC_INT4["energy_gap"],
            round(worst4.energy_gap, 2),
            "x",
        ),
    ]
    out = _artifact_dir(artifact_dir)
    artifact = write_csv(
        out / "secVC_energy.csv",
        [
            "workload",
            "precision",
            "burst_cycles",
            "binary_pj",
            "tub_pj",
            "tub_silent_adjusted_pj",
            "gap",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="secVC",
        title="Workload-dependent energy per k-psum burst (16x16 array)",
        headers=(
            "workload",
            "precision",
            "burst cycles",
            "binary pJ",
            "tub pJ",
            "tub pJ (silent-adj)",
            "gap",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "the tub array trades energy-per-burst for area; lower "
            "precision shrinks the gap (paper: 11.7x -> 2.3x from INT8 "
            "to INT4)",
        ),
        artifacts=(artifact,),
    )


# ----------------------------------------------------------------------
# Sec. V-D + Fig. 9 — iso-area throughput
# ----------------------------------------------------------------------
def secVD_iso_area(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Iso-area throughput improvement for the 16x16 arrays."""
    del quick
    rows = []
    comparisons = []
    for precision in (INT8, INT4):
        binary = synthesize(binary_array_netlist(16, 16, precision))
        tub = synthesize(tub_array_netlist(16, 16, precision))
        improvement = iso_area_improvement(binary.area_um2, tub.area_um2)
        rows.append(
            (
                precision.name,
                round(binary.area_mm2, 4),
                round(tub.area_mm2, 4),
                round(improvement, 2),
            )
        )
        comparisons.append(
            Comparison(
                f"{precision.name} iso-area throughput",
                paper.SECVD_ISO_AREA[precision.name],
                round(improvement, 2),
                "x",
            )
        )
    return ExperimentResult(
        experiment_id="secVD",
        title="Iso-area throughput improvement, 16x16 array",
        headers=(
            "precision",
            "binary area mm2",
            "tub area mm2",
            "improvement",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "improvement = binary_area / tub_area: that many more tub "
            "cells fit at iso-area, each producing k psums per burst",
        ),
    )


def fig9_iso_area_scaling(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Single-cell iso-area throughput vs n, with the n=65536
    projection."""
    n_values = [16, 64, 256] if quick else [16, 64, 256, 1024, 4096]
    rows = []
    comparisons = []
    for precision in (INT8, INT4):
        improvements = []
        for n in n_values:
            binary = synthesize(binary_pe_cell_netlist(precision, n))
            tub = synthesize(tub_pe_cell_netlist(precision, n))
            improvements.append(
                iso_area_improvement(binary.area_um2, tub.area_um2)
            )
        projected = project_improvement(n_values, improvements, 65536)
        for n, improvement in zip(n_values, improvements):
            rows.append((precision.name, n, round(improvement, 2), ""))
        rows.append(
            (precision.name, 65536, round(projected, 2), "projected")
        )
        comparisons.append(
            Comparison(
                f"{precision.name} projected improvement @ n=65536",
                paper.FIG9_PROJECTION[precision.name],
                round(projected, 2),
                "x",
            )
        )
    out = _artifact_dir(artifact_dir)
    artifact = write_csv(
        out / "fig9_iso_area.csv",
        ["precision", "n", "improvement", "kind"],
        rows,
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Iso-area throughput vs number of multipliers (single cell)",
        headers=("precision", "n", "improvement", ""),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "the trend grows with n (the binary multiplier area "
            "dominates); our absolute ratios are below the paper's "
            "because our tub cell model carries more per-lane hardware "
            "(see EXPERIMENTS.md)",
        ),
        artifacts=(artifact,),
    )


# ----------------------------------------------------------------------
# background / ablations
# ----------------------------------------------------------------------
def gemm_baselines(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """tuGEMM vs tubGEMM vs binary GEMM (Sec. II-B background)."""
    rng = make_rng("gemm-bench")
    size = 6 if quick else 12
    rows = []
    for precision in (INT8, INT4):
        spec = int_spec(precision)
        a = spec.random_array(rng, (size, size))
        b = spec.random_array(rng, (size, size))
        expected = a @ b
        for engine in (
            BinaryGemm(spec),
            TuGemm(spec),
            TubGemm(spec),
        ):
            result = engine.multiply(a, b)
            rows.append(
                (
                    type(engine).__name__,
                    spec.name,
                    result.cycles,
                    engine.worst_case_cycles(size),
                    "yes"
                    if np.array_equal(result.output, expected)
                    else "NO",
                )
            )
    return ExperimentResult(
        experiment_id="gemm",
        title="Unary GEMM baselines (prior work the paper builds on)",
        headers=(
            "engine",
            "precision",
            "cycles",
            "worst case",
            "exact",
        ),
        rows=tuple(rows),
        notes=(
            "tubGEMM's 2s-unary hybrid removes tuGEMM's quadratic "
            "latency; Tempus Core lifts the same multiplier into the "
            "convolution dataflow",
        ),
    )


def ablation_encoding(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Design-choice ablation: 2s-unary vs pure unary burst latency, and
    PCU burst overhead sensitivity."""
    scale = 0.25 if quick else 0.5
    model = load_quantized_model("mobilenet_v2", scale=scale)
    profile = profile_model_magnitudes(model)
    twos = profile.mean_latency_cycles(TwosUnaryCode())
    pure = profile.mean_latency_cycles(PureUnaryCode())
    rows = [
        ("pure unary", round(pure, 1), "1.00x"),
        ("2s-unary", round(twos, 1), f"{pure / max(twos, 1e-9):.2f}x"),
    ]
    for overhead in (0, 1, 2, 4):
        rows.append(
            (
                f"2s-unary + {overhead}-cycle burst overhead",
                round(twos + overhead, 1),
                f"{pure / (twos + overhead):.2f}x",
            )
        )
    return ExperimentResult(
        experiment_id="ablation",
        title="Encoding ablation: mean burst cycles on MobileNetV2 tiles",
        headers=("configuration", "mean cycles", "speedup vs pure unary"),
        rows=tuple(rows),
        notes=(
            "2s-unary's halving is the paper's key latency lever; the "
            "PCU's cache-in/out overhead is amortised over the burst",
        ),
    )


def ablation_scheduling(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Future-work extension: burst-aware tile scheduling (channel/kernel
    permutation) on profiled CNN weights."""
    from repro.core.scheduling import model_schedule_savings

    scale = 0.25 if quick else 0.5
    config = CoreConfig(k=16, n=16, precision=INT8)
    model = load_quantized_model("mobilenet_v2", scale=scale)
    per_layer = model_schedule_savings(model, config)
    baseline = sum(row[1] for row in per_layer)
    optimized = sum(row[2] for row in per_layer)
    best = sorted(per_layer, key=lambda row: row[3], reverse=True)[:6]
    rows = [
        (
            name.removeprefix("mobilenet_v2."),
            base,
            opt,
            f"{speedup:.3f}x",
        )
        for name, base, opt, speedup in best
    ]
    rows.append(
        (
            "TOTAL (all layers)",
            baseline,
            optimized,
            f"{baseline / max(optimized, 1):.3f}x",
        )
    )
    return ExperimentResult(
        experiment_id="scheduling",
        title="Extension: burst-aware tile scheduling (MobileNetV2)",
        headers=(
            "layer",
            "baseline cycles",
            "scheduled cycles",
            "speedup",
        ),
        rows=tuple(rows),
        notes=(
            "sorting channels/kernels by magnitude groups outliers into "
            "the same tiles; pure data-layout change, bit-exact outputs",
        ),
    )


def ablation_tile_size(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Design-space ablation: array (tile) size vs workload burst latency.

    Fig. 9 argues larger arrays win more iso-area throughput; the
    counterweight is that a larger k x n tile takes its maximum over more
    weights, lengthening every burst.  This sweep quantifies that latency
    cost on profiled MobileNetV2 weights.
    """
    scale = 0.25 if quick else 0.5
    model = load_quantized_model("mobilenet_v2", scale=scale)
    geometries = [(4, 4), (8, 8), (16, 16), (32, 32)]
    rows = []
    for k, n in geometries:
        profile = profile_model_magnitudes(model, k=k, n=n)
        rows.append(
            (
                f"{k}x{n}",
                k * n,
                round(profile.mean_magnitude(), 1),
                round(profile.mean_latency_cycles(), 1),
                worst_case_cycles(model.precision),
            )
        )
    return ExperimentResult(
        experiment_id="tilesize",
        title="Ablation: tile size vs mean burst latency (MobileNetV2)",
        headers=(
            "array",
            "PEs",
            "mean tile max",
            "mean burst cycles",
            "worst case",
        ),
        rows=tuple(rows),
        notes=(
            "larger tiles take the max over more weights, pushing bursts "
            "toward the worst case — the latency price of the iso-area "
            "throughput scaling in Fig. 9",
        ),
    )


def ext_llm_projection(
    quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Future-work extension: ultra-low-precision LLM projections
    (weight-only INT8/INT4/INT2) on the tub array."""
    from repro.gemm.llm import TINY_LLM, TransformerLayerDims, token_step_latency

    dims = TransformerLayerDims(256, 4, 704) if quick else TINY_LLM
    config = CoreConfig(k=16, n=16, precision=INT8)
    rows = []
    for width in (8, 4, 2):
        results = token_step_latency(dims, width, config)
        tempus = sum(r.tempus_cycles for r in results.values())
        binary = sum(r.binary_cycles for r in results.values())
        rows.append(
            (
                f"INT{width} weights",
                binary,
                tempus,
                f"{tempus / binary:.2f}x",
                int_spec(width).worst_case_tub_cycles,
            )
        )
    return ExperimentResult(
        experiment_id="llm",
        title="Extension: one decoder-layer token step "
        f"(d_model={dims.d_model}, d_ff={dims.d_ff}) on a 16x16 array",
        headers=(
            "weight precision",
            "binary cycles",
            "tub cycles",
            "slowdown",
            "worst burst",
        ),
        rows=tuple(rows),
        notes=(
            "at INT2 every burst is 1 cycle: the tub array matches binary "
            "latency while keeping its area advantage — the paper's "
            "motivation for ultra-low-precision LLMs",
        ),
    )


#: Registry mapping experiment ids to drivers.
EXPERIMENTS = {
    "fig1": fig1_quant_accuracy,
    "table1": table1_word_sparsity,
    "fig2": fig2_tub_dataflow,
    "fig3": fig3_integration,
    "table2": table2_pe_cell_synthesis,
    "fig4": fig4_array16x16,
    "fig5": fig5_cmac_vs_pcu,
    "fig6": fig6_layout,
    "table3": table3_pnr,
    "fig7": fig7_weight_magnitude,
    "fig8": fig8_sparsity_profile,
    "secVC": secVC_energy,
    "secVD": secVD_iso_area,
    "fig9": fig9_iso_area_scaling,
    "gemm": gemm_baselines,
    "ablation": ablation_encoding,
    "tilesize": ablation_tile_size,
    "scheduling": ablation_scheduling,
    "llm": ext_llm_projection,
}


def run_experiment(
    experiment_id: str, quick: bool = False, artifact_dir=None
) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from exc
    return driver(quick=quick, artifact_dir=artifact_dir)
