"""Cycle-level temporal encoder block.

Hardware view: each PE cell holds one "2s-unary block" per multiplier lane.
The block latches the weight magnitude into a working register and, every
clock, emits a pulse while draining the register — value 2 while at least 2
remains, a final value-1 pulse for an odd leftover.  The weight register
doubles as the down-counter, which is why the tub datapath needs no separate
counter (reflected in the area model of :mod:`repro.core.hwmodel`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError, SimulationError
from repro.unary.encoding import TwosUnaryCode, UnaryCode


class TemporalEncoder:
    """Behavioral model of one temporal-encoder lane.

    Example:
        >>> enc = TemporalEncoder()
        >>> enc.load(-5)
        >>> [enc.tick() for _ in range(4)]
        [-2, -2, -1, 0]
    """

    def __init__(self, code: UnaryCode | None = None) -> None:
        self.code = code if code is not None else TwosUnaryCode()
        self._remaining = 0
        self._negative = False
        self._loaded = False

    def load(self, value: int) -> None:
        """Latch a new signed weight; restarts the stream."""
        value = int(value)
        self._remaining = abs(value)
        self._negative = value < 0
        self._loaded = True

    @property
    def busy(self) -> bool:
        """True while pulses are still pending."""
        return self._remaining > 0

    @property
    def remaining_cycles(self) -> int:
        return self.code.cycles_for_magnitude(self._remaining)

    def tick(self) -> int:
        """Advance one clock; returns the signed pulse emitted this cycle
        (0, ±1 or ±2)."""
        if not self._loaded:
            raise SimulationError("temporal encoder ticked before load()")
        if self._remaining <= 0:
            return 0
        if isinstance(self.code, TwosUnaryCode):
            pulse = 2 if self._remaining >= 2 else 1
        else:
            pulse = 1
        self._remaining -= pulse
        return -pulse if self._negative else pulse

    def drain(self) -> list[int]:
        """Run to completion, returning all remaining signed pulses."""
        pulses = []
        while self.busy:
            pulses.append(self.tick())
        return pulses


def encode_cycles(
    weights: np.ndarray, code: UnaryCode | None = None
) -> np.ndarray:
    """Per-element stream lengths for an integer weight array.

    This is the vectorised fast path used by the profiling package: the
    latency of a k x n tile is simply ``encode_cycles(tile).max()``.
    """
    code = code if code is not None else TwosUnaryCode()
    arr = np.asarray(weights)
    if arr.dtype.kind not in "iu":
        raise EncodingError("weights must be an integer array")
    return code.cycles_array(arr)
