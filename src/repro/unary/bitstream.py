"""Temporal bitstream container.

A temporal bitstream is the wire-level signal a temporal encoder drives: one
pulse per clock cycle, each pulse carrying a small value (0, 1 or 2 in the
2s-unary scheme).  The stream is sign-magnitude: the magnitude travels as
pulses, the sign as a separate level signal (the hardware applies it as
add/subtract control at the accumulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import EncodingError

_VALID_PULSES = (0, 1, 2)


@dataclass(frozen=True)
class TemporalBitstream:
    """An immutable pulse train plus a sign bit.

    Attributes:
        pulses: per-cycle pulse values, each in {0, 1, 2}.
        negative: True if the encoded value is negative.
    """

    pulses: tuple[int, ...]
    negative: bool = False

    def __post_init__(self) -> None:
        for pulse in self.pulses:
            if pulse not in _VALID_PULSES:
                raise EncodingError(f"invalid pulse value: {pulse}")

    @staticmethod
    def from_iterable(
        pulses: Sequence[int], negative: bool = False
    ) -> "TemporalBitstream":
        return TemporalBitstream(tuple(int(p) for p in pulses), negative)

    @property
    def cycles(self) -> int:
        """Stream length in clock cycles."""
        return len(self.pulses)

    @property
    def active_cycles(self) -> int:
        """Cycles carrying a non-zero pulse."""
        return sum(1 for p in self.pulses if p)

    @property
    def magnitude(self) -> int:
        return sum(self.pulses)

    @property
    def value(self) -> int:
        """The signed integer the stream encodes."""
        return -self.magnitude if self.negative else self.magnitude

    @property
    def is_silent(self) -> bool:
        """True when the stream carries no pulses at all — a "silent PE"
        in the paper's sparsity analysis."""
        return self.magnitude == 0

    def __iter__(self) -> Iterator[int]:
        return iter(self.pulses)

    def __len__(self) -> int:
        return len(self.pulses)

    def padded(self, cycles: int) -> "TemporalBitstream":
        """Extend with zero pulses to ``cycles`` total — lockstep operation
        of an array is modelled by padding every lane to the array maximum."""
        if cycles < self.cycles:
            raise EncodingError(
                f"cannot pad stream of {self.cycles} cycles down to {cycles}"
            )
        return TemporalBitstream(
            self.pulses + (0,) * (cycles - self.cycles), self.negative
        )

    def signed_pulses(self) -> tuple[int, ...]:
        """Pulses with the sign applied — the accumulator-side view."""
        if self.negative:
            return tuple(-p for p in self.pulses)
        return self.pulses

    def waveform(self) -> str:
        """Compact trace such as ``-|2 2 1|`` for -5 — used by the Fig. 2
        dataflow example."""
        sign = "-" if self.negative else "+"
        body = " ".join(str(p) for p in self.pulses) if self.pulses else "·"
        return f"{sign}|{body}|"
