"""Temporal-to-binary conversion (the accumulate side of a tub lane).

The decoder is just a signed accumulator: for every incoming pulse it adds
``pulse * operand`` (the pulse already carries its value and sign).  In the
multiplier, ``operand`` is the binary activation; in an encode/decode
round-trip test, ``operand`` is 1.
"""

from __future__ import annotations

from repro.unary.bitstream import TemporalBitstream


class TemporalAccumulator:
    """Signed accumulator consuming pulses against a binary operand."""

    def __init__(self) -> None:
        self._total = 0

    def reset(self) -> None:
        self._total = 0

    def tick(self, pulse: int, operand: int = 1) -> int:
        """Accumulate one cycle's contribution; returns the running total.

        Hardware note: a pulse of 2 contributes ``operand << 1`` (a wiring
        shift), a pulse of 1 contributes ``operand`` — no multiplier is
        involved, only an adder and a small select mux.
        """
        if pulse:
            self._total += int(pulse) * int(operand)
        return self._total

    @property
    def value(self) -> int:
        return self._total

    def consume(self, stream: TemporalBitstream, operand: int = 1) -> int:
        """Drain a full stream; returns the final total."""
        for pulse in stream.signed_pulses():
            self.tick(pulse, operand)
        return self._total
