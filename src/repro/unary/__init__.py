"""Temporal-unary encoding substrate.

This package implements the two deterministic unary codes used by the tub
(temporal-unary-binary) multiplier family:

* **pure unary** (tuGEMM): a magnitude ``m`` becomes ``m`` pulses of value 1.
* **2s-unary** (tubGEMM / Tempus Core): ``floor(m/2)`` pulses of value 2 plus
  one pulse of value 1 when ``m`` is odd — halving the stream length, which
  is where Tempus Core's worst-case-latency halving comes from.

It also provides cycle-level encoder/decoder blocks mirroring the "2s-unary
blocks in the temporal encoder" the paper places inside each PE cell.
"""

from repro.unary.bitstream import TemporalBitstream
from repro.unary.encoding import (
    PureUnaryCode,
    TwosUnaryCode,
    UnaryCode,
    get_code,
)
from repro.unary.encoder import TemporalEncoder, encode_cycles
from repro.unary.decoder import TemporalAccumulator

__all__ = [
    "TemporalBitstream",
    "UnaryCode",
    "PureUnaryCode",
    "TwosUnaryCode",
    "get_code",
    "TemporalEncoder",
    "TemporalAccumulator",
    "encode_cycles",
]
