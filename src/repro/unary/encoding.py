"""Deterministic unary codes: pure unary and 2s-unary.

Terminology follows the tubGEMM papers: a *code* maps a signed integer to a
:class:`~repro.unary.bitstream.TemporalBitstream` and back.  Codes are
deterministic (unlike stochastic-computing bitstreams), so decoding is exact
and accuracy is identical to binary arithmetic — a central claim of the
paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import EncodingError
from repro.unary.bitstream import TemporalBitstream


class UnaryCode(ABC):
    """Interface for deterministic temporal-unary codes."""

    #: Human-readable scheme name.
    name: str = "abstract"

    @abstractmethod
    def encode_magnitude(self, magnitude: int) -> tuple[int, ...]:
        """Pulse train for a non-negative magnitude."""

    def encode(self, value: int) -> TemporalBitstream:
        """Encode a signed integer."""
        value = int(value)
        return TemporalBitstream(
            self.encode_magnitude(abs(value)), negative=value < 0
        )

    def decode(self, stream: TemporalBitstream) -> int:
        """Recover the signed integer from a stream (code-independent since
        pulses carry their values)."""
        return stream.value

    @abstractmethod
    def cycles_for_magnitude(self, magnitude: int) -> int:
        """Stream length for a given magnitude, without materialising it."""

    def cycles_for(self, value: int) -> int:
        return self.cycles_for_magnitude(abs(int(value)))

    def cycles_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cycles_for` over an integer array."""
        mags = np.abs(np.asarray(values, dtype=np.int64))
        return self._cycles_array_from_magnitude(mags)

    def step_cycles(self, magnitude: int) -> int:
        """Cycles one lockstep array step holds for a streamed operand
        of this magnitude: the stream length, floored at 1 (an all-zero
        operand still occupies one issue slot).

        This is *the* magnitude->cycles helper shared by the GEMM
        engines (:mod:`repro.gemm`), the CSC burst scheduler and the
        runtime's burst-map accounting, so the gemm-level and
        runtime-level cycle models cannot drift apart — including at
        the signed edge values (e.g. -2 at INT2, whose magnitude 2 is
        *outside* the positive code range but costs exactly one
        2s-unary step).
        """
        return max(1, self.cycles_for_magnitude(abs(int(magnitude))))

    def step_cycles_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`step_cycles` over an integer array."""
        return np.maximum(self.cycles_array(values), 1)

    @abstractmethod
    def _cycles_array_from_magnitude(self, mags: np.ndarray) -> np.ndarray:
        ...

    def magnitude_after(
        self, mags: np.ndarray, cycles: "int | np.ndarray"
    ) -> np.ndarray:
        """Residual magnitude left in each encoder after ``cycles`` clock
        edges — the closed form behind burst-sized simulation jumps: the
        pulses a lane emits in ``cycles`` edges sum to
        ``mags - magnitude_after(mags, cycles)`` exactly.
        """
        mags = np.asarray(mags, dtype=np.int64)
        if np.any(mags < 0):
            raise EncodingError("magnitude must be non-negative")
        cycles = np.asarray(cycles, dtype=np.int64)
        if np.any(cycles < 0):
            raise EncodingError("cycle count must be non-negative")
        return self._magnitude_after(mags, cycles)

    @abstractmethod
    def _magnitude_after(
        self, mags: np.ndarray, cycles: np.ndarray
    ) -> np.ndarray:
        ...


class PureUnaryCode(UnaryCode):
    """tuGEMM-style code: magnitude ``m`` -> ``m`` pulses of value 1."""

    name = "unary"

    def encode_magnitude(self, magnitude: int) -> tuple[int, ...]:
        magnitude = int(magnitude)
        if magnitude < 0:
            raise EncodingError("magnitude must be non-negative")
        return (1,) * magnitude

    def cycles_for_magnitude(self, magnitude: int) -> int:
        if magnitude < 0:
            raise EncodingError("magnitude must be non-negative")
        return int(magnitude)

    def _cycles_array_from_magnitude(self, mags: np.ndarray) -> np.ndarray:
        return mags

    def _magnitude_after(
        self, mags: np.ndarray, cycles: np.ndarray
    ) -> np.ndarray:
        return np.maximum(mags - cycles, 0)


class TwosUnaryCode(UnaryCode):
    """2s-unary code (tubGEMM / Tempus Core).

    A magnitude ``m`` becomes ``floor(m/2)`` pulses of value 2 followed by a
    single value-1 pulse when ``m`` is odd, so the stream length is
    ``ceil(m/2)`` — half the pure-unary latency.
    """

    name = "2s-unary"

    def encode_magnitude(self, magnitude: int) -> tuple[int, ...]:
        magnitude = int(magnitude)
        if magnitude < 0:
            raise EncodingError("magnitude must be non-negative")
        return (2,) * (magnitude // 2) + ((1,) if magnitude % 2 else ())

    def cycles_for_magnitude(self, magnitude: int) -> int:
        if magnitude < 0:
            raise EncodingError("magnitude must be non-negative")
        return (int(magnitude) + 1) // 2

    def _cycles_array_from_magnitude(self, mags: np.ndarray) -> np.ndarray:
        return (mags + 1) // 2

    def _magnitude_after(
        self, mags: np.ndarray, cycles: np.ndarray
    ) -> np.ndarray:
        # Value-2 pulses while >= 2 remains, one value-1 pulse for an odd
        # tail: m cycles always drain min(2 * m, mag).
        return np.maximum(mags - 2 * cycles, 0)


_CODES = {
    "unary": PureUnaryCode(),
    "2s-unary": TwosUnaryCode(),
}


def get_code(name: str) -> UnaryCode:
    """Look up a code by name ("unary" or "2s-unary")."""
    try:
        return _CODES[name]
    except KeyError as exc:
        raise EncodingError(
            f"unknown unary code {name!r}; expected one of {sorted(_CODES)}"
        ) from exc
