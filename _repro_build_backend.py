"""In-tree PEP 517/660 build backend, pure standard library.

The reproduction environment is fully offline: the isolated build
environment pip creates for PEP 517 hooks contains *nothing* (it cannot
download setuptools), and the main environment has setuptools but no
``wheel`` package — so setuptools' ``editable_wheel``/``dist_info``
commands (which require ``bdist_wheel``) cannot run either.  This
backend therefore implements the two things ``pip install -e .`` needs
with only the standard library:

* ``prepare_metadata_for_build_wheel``/``..._build_editable`` —
  translate the static ``[project]`` table of pyproject.toml into core
  metadata;
* ``build_editable`` — a PEP 660 editable wheel is just a zip holding a
  ``.pth`` file pointing at ``src/`` plus the ``.dist-info`` directory.

Non-editable ``build_wheel``/``build_sdist`` are delegated to
setuptools for environments that do have the full toolchain.
"""

import base64
import hashlib
import os
import zipfile

_ROOT = os.path.dirname(os.path.abspath(__file__))


def _project():
    import tomllib

    with open(os.path.join(_ROOT, "pyproject.toml"), "rb") as handle:
        return tomllib.load(handle)["project"]


def _metadata_lines(project):
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {project['name']}",
        f"Version: {project['version']}",
    ]
    if "description" in project:
        lines.append(f"Summary: {project['description']}")
    if "requires-python" in project:
        lines.append(f"Requires-Python: {project['requires-python']}")
    for requirement in project.get("dependencies", ()):
        lines.append(f"Requires-Dist: {requirement}")
    for extra, requirements in project.get(
        "optional-dependencies", {}
    ).items():
        lines.append(f"Provides-Extra: {extra}")
        for requirement in requirements:
            lines.append(
                f"Requires-Dist: {requirement}; extra == \"{extra}\""
            )
    return "\n".join(lines) + "\n"


def _dist_info_name(project):
    return (
        f"{project['name'].replace('-', '_')}-{project['version']}"
        ".dist-info"
    )


# ----------------------------------------------------------------------
# Hooks pip probes inside the bare isolated environment.
# ----------------------------------------------------------------------
def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def prepare_metadata_for_build_wheel(
    metadata_directory, config_settings=None
):
    project = _project()
    dist_info = os.path.join(metadata_directory, _dist_info_name(project))
    os.makedirs(dist_info, exist_ok=True)
    with open(
        os.path.join(dist_info, "METADATA"), "w", encoding="utf-8"
    ) as handle:
        handle.write(_metadata_lines(project))
    return os.path.basename(dist_info)


def prepare_metadata_for_build_editable(
    metadata_directory, config_settings=None
):
    return prepare_metadata_for_build_wheel(
        metadata_directory, config_settings
    )


# ----------------------------------------------------------------------
# PEP 660 editable wheel, built with zipfile alone.
# ----------------------------------------------------------------------
def build_editable(
    wheel_directory, config_settings=None, metadata_directory=None
):
    project = _project()
    name = project["name"].replace("-", "_")
    version = project["version"]
    dist_info = _dist_info_name(project)
    wheel_name = f"{name}-{version}-py3-none-any.whl"

    files = {
        f"__editable__.{name}.pth": os.path.join(_ROOT, "src") + "\n",
        f"{dist_info}/METADATA": _metadata_lines(project),
        f"{dist_info}/WHEEL": (
            "Wheel-Version: 1.0\n"
            "Generator: _repro_build_backend\n"
            "Root-Is-Purelib: true\n"
            "Tag: py3-none-any\n"
        ),
    }
    record_rows = []
    for path, content in files.items():
        data = content.encode("utf-8")
        digest = base64.urlsafe_b64encode(
            hashlib.sha256(data).digest()
        ).rstrip(b"=").decode("ascii")
        record_rows.append(f"{path},sha256={digest},{len(data)}")
    record_rows.append(f"{dist_info}/RECORD,,")

    wheel_path = os.path.join(wheel_directory, wheel_name)
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as zf:
        for path, content in files.items():
            zf.writestr(path, content)
        zf.writestr(f"{dist_info}/RECORD", "\n".join(record_rows) + "\n")
    return wheel_name


# ----------------------------------------------------------------------
# Full builds: delegate to setuptools (needs the complete toolchain).
# ----------------------------------------------------------------------
def build_wheel(
    wheel_directory, config_settings=None, metadata_directory=None
):
    from setuptools import build_meta

    return build_meta.build_wheel(
        wheel_directory, config_settings, metadata_directory
    )


def build_sdist(sdist_directory, config_settings=None):
    from setuptools import build_meta

    return build_meta.build_sdist(sdist_directory, config_settings)
