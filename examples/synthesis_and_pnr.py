#!/usr/bin/env python3
"""Hardware flow demo: elaborate both 16x4 INT4 units to gate-level
netlists, estimate synthesis PPA, then place-and-route and render the
layout density maps (the paper's Fig. 6 / Table III flow).

Run:  python examples/synthesis_and_pnr.py
"""

from repro.core.hwmodel import pcu_unit_netlist, tub_pe_cell_netlist
from repro.hw.breakdown import module_breakdown, render_breakdown
from repro.hw.pnr import place_and_route
from repro.hw.synthesis import synthesize
from repro.nvdla.hwmodel import binary_pe_cell_netlist, cmac_unit_netlist
from repro.utils.intrange import INT4
from repro.utils.tables import format_table


def main() -> None:
    designs = {
        "CMAC (binary)": cmac_unit_netlist(16, 4, INT4),
        "PCU (tub)": pcu_unit_netlist(16, 4, INT4),
    }

    synth_rows = []
    for label, netlist in designs.items():
        result = synthesize(netlist, clock_mhz=250)
        top_cells = ", ".join(
            f"{name}:{count}"
            for name, count in result.cells_by_type.most_common(4)
        )
        synth_rows.append(
            (
                label,
                result.cell_count,
                round(result.area_mm2, 4),
                round(result.total_power_mw, 3),
                round(result.critical_path_ns, 2),
                top_cells,
            )
        )
    print(
        format_table(
            ["design", "cells", "area mm2", "power mW", "path ns",
             "top cells"],
            synth_rows,
            title="post-synthesis (NanGate45 model, 250 MHz)",
        )
    )
    print()

    pnr_rows = []
    layouts = []
    for label, netlist in designs.items():
        result = place_and_route(netlist, utilization=0.70)
        pnr_rows.append(
            (
                label,
                round(result.die_area_mm2, 4),
                round(result.floorplan.utilization, 2),
                round(result.routing.total_wirelength_um / 1e3, 1),
                round(result.total_power_mw, 3),
                "yes" if result.meets_timing else "NO",
            )
        )
        layouts.append(result.layout.render(f"{label} placement density"))
    print(
        format_table(
            ["design", "die mm2", "util", "wire mm", "power mW", "timing"],
            pnr_rows,
            title="post-place-and-route (70% floorplan utilization)",
        )
    )
    print()
    for layout in layouts:
        print(layout)
        print()

    # Where does the area/power actually go inside one PE cell?
    for label, cell in (
        ("binary PE cell (INT4, n=4)", binary_pe_cell_netlist(INT4, 4)),
        ("tub PE cell (INT4, n=4)", tub_pe_cell_netlist(INT4, 4)),
    ):
        print(render_breakdown(module_breakdown(cell), title=label))
        print()


if __name__ == "__main__":
    main()
