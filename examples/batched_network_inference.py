#!/usr/bin/env python3
"""Batched zoo-model inference through the NVDLA pipeline.

Where ``full_network_inference.py`` walks a toy 3-stage network one
image at a time, this example compiles real Table-I topologies from
``models/zoo.py`` (width/resolution-scaled for simulation speed) and
runs a whole batch through every conv/SDP/PDP stage at once — on both
convolution engines, with burst-aware tile scheduling, and with the
shared burst-map cache keeping repeated latency analyses free.

Run:  python examples/batched_network_inference.py
"""

import numpy as np

from repro.core.latency import burst_map_cache_stats
from repro.nvdla.config import CoreConfig
from repro.runtime import NetworkRunner
from repro.utils.tables import format_table


def main() -> None:
    config = CoreConfig(k=16, n=16)
    batch = 4
    models = ("mobilenet_v2", "resnet18", "shufflenet_v2")

    runners = {
        engine: NetworkRunner(
            config, engine=engine, scale=0.125, input_size=32
        )
        for engine in ("binary", "tempus")
    }

    rows = []
    for name in models:
        binary = runners["binary"].run(name, batch)
        tempus = runners["tempus"].run(name, batch)
        assert np.array_equal(binary.output, tempus.output), (
            "engines diverged"
        )
        # The per-image reference pipeline reproduces the batched run
        # bit for bit (and cycle for cycle).
        reference = runners["tempus"].run_per_image(name, batch)
        assert np.array_equal(tempus.output, reference.output)
        assert tempus.conv_cycles == reference.conv_cycles
        rows.append(
            (
                name,
                len(tempus.stages),
                "x".join(str(d) for d in tempus.output.shape),
                f"{binary.conv_cycles:,}",
                f"{tempus.conv_cycles:,}",
                f"{tempus.images_per_million_cycles:.3f}",
                f"{tempus.cache['hit_rate']:.2f}",
            )
        )

    print(
        format_table(
            [
                "model",
                "stages",
                "output",
                "binary cycles",
                "tempus cycles",
                "img/Mcycle",
                "cache hit",
            ],
            rows,
            title=(
                f"batch-{batch} inference on the {config.describe()} "
                "pipeline (scale 0.125, 32x32 input)"
            ),
        )
    )
    stats = burst_map_cache_stats()
    print(
        f"\nburst-map cache totals: {stats['hits']} hits / "
        f"{stats['misses']} misses ({stats['entries']} entries)"
    )
    print(
        "outputs are bit-identical across engines and to the per-image "
        "reference pipeline."
    )


if __name__ == "__main__":
    main()
