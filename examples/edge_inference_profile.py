#!/usr/bin/env python3
"""Edge-inference profiling: MobileNetV2 on a 16x16 Tempus Core.

Reproduces the paper's Sec. V-C workflow end to end for one CNN: weight
profiling (Figs. 7/8), per-layer latency vs the binary baseline, and the
workload-dependent energy estimate.

Run:  python examples/edge_inference_profile.py [--full]
      (--full uses the unscaled model; default runs a 0.5-width variant
      to keep the demo under ~10 seconds)
"""

import sys

from repro.models.weights import load_quantized_model
from repro.nvdla.config import CoreConfig
from repro.profiling.energy import workload_energy
from repro.profiling.latency import model_workload_latency
from repro.profiling.magnitude import profile_model_magnitudes
from repro.profiling.sparsity import profile_model_sparsity
from repro.utils.tables import format_table


def main() -> None:
    scale = 1.0 if "--full" in sys.argv else 0.5
    config = CoreConfig(k=16, n=16, precision=8)
    print(f"loading synthetic INT8 MobileNetV2 (width scale {scale})...")
    model = load_quantized_model("mobilenet_v2", scale=scale)

    # --- Fig. 7 / Fig. 8 style profiling --------------------------------
    magnitude = profile_model_magnitudes(model)
    sparsity = profile_model_sparsity(model)
    print(f"  conv layers        : {len(model.layers)}")
    print(f"  total weights      : {model.total_weights / 1e6:.2f}M")
    print(f"  word sparsity      : {model.word_sparsity() * 100:.2f}%")
    print(f"  mean tile max      : {magnitude.mean_magnitude():.1f}")
    print(f"  mean burst cycles  : {magnitude.mean_latency_cycles():.1f} "
          "(worst case 64)")
    print(f"  silent PEs per tile: {sparsity.mean_silent_pes():.1f} / 256")
    print()

    # --- per-layer latency ----------------------------------------------
    workload = model_workload_latency(model, config)
    slowest = sorted(
        workload.layers, key=lambda l: l.tempus_cycles, reverse=True
    )[:8]
    rows = [
        (
            layer.layer.removeprefix("mobilenet_v2."),
            layer.binary_cycles,
            layer.tempus_cycles,
            f"{layer.slowdown:.1f}x",
            f"{layer.mean_burst:.1f}",
        )
        for layer in slowest
    ]
    print(
        format_table(
            ["layer", "binary cyc", "tempus cyc", "slowdown", "mean burst"],
            rows,
            title="heaviest layers (16x16 array)",
        )
    )
    print()
    print(f"whole model: binary {workload.binary_cycles:,} cycles, "
          f"tempus {workload.tempus_cycles:,} cycles "
          f"({workload.slowdown:.1f}x)")
    print()

    # --- Sec. V-C energy --------------------------------------------------
    energy = workload_energy(
        "MobileNetV2",
        config,
        burst_cycles=magnitude.mean_latency_cycles(),
        active_fraction=sparsity.mean_active_pes() / 256.0,
    )
    print("energy per k-psum burst (measured array powers @ 250 MHz):")
    print(f"  binary array : {energy.binary_energy_pj:6.2f} pJ")
    print(f"  tub array    : {energy.tub_energy_pj:6.2f} pJ "
          f"({energy.energy_gap:.1f}x)")
    print(f"  silent-PE adjusted: "
          f"{energy.tub_energy_silent_adjusted_pj:6.2f} pJ")
    print()
    print("the tub core trades energy-per-burst for a "
          f"{1:.0f}/{energy.energy_gap:.1f} of the area — see the secVD "
          "benchmark for the iso-area throughput view.")


if __name__ == "__main__":
    main()
