#!/usr/bin/env python3
"""Quickstart: multiply with a tub lane, then run a convolution layer
through Tempus Core and the NVDLA baseline and compare.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ConvolutionCore,
    CoreConfig,
    TempusCore,
    golden_conv2d,
    tub_multiply,
)


def main() -> None:
    # 1) One tub multiplication, cycle by cycle (the paper's Fig. 2).
    trace = tub_multiply(activation=5, weight=-7)
    print(trace.render())
    print()

    # 2) A convolution layer on a 16x16 INT8 array — the paper's main
    #    configuration.
    config = CoreConfig(k=16, n=16, precision=8)
    rng = np.random.default_rng(2025)
    activations = rng.integers(-128, 128, size=(16, 12, 12))
    weights = rng.integers(-32, 33, size=(16, 16, 3, 3))

    tempus = TempusCore(config).run_layer(activations, weights, padding=1)
    binary = ConvolutionCore(config).run_layer(
        activations, weights, padding=1
    )
    golden = golden_conv2d(activations, weights, stride=1, padding=1)

    assert np.array_equal(tempus.output, golden), "tub result must be exact"
    assert np.array_equal(binary.output, golden)

    print("convolution 16ch -> 16k, 12x12, 3x3, INT8")
    print(f"  outputs bit-exact across engines : True")
    print(f"  NVDLA CC cycles  : {binary.cycles}")
    print(f"  Tempus cycles    : {tempus.cycles} "
          f"({tempus.cycles / binary.cycles:.1f}x, bounded by the largest "
          "weight magnitude)")
    print(f"  atoms scheduled  : {tempus.atoms} (identical schedules)")
    print()
    print("Smaller weights stream shorter bursts — requantize the same "
          "layer to INT4:")
    weights4 = np.clip(weights // 16, -8, 7)
    activations4 = np.clip(activations // 16, -8, 7)
    config4 = config.with_precision(4)
    tempus4 = TempusCore(config4).run_layer(
        activations4, weights4, padding=1
    )
    binary4 = ConvolutionCore(config4).run_layer(
        activations4, weights4, padding=1
    )
    print(f"  INT4 Tempus cycles: {tempus4.cycles} "
          f"({tempus4.cycles / binary4.cycles:.1f}x vs binary — worst "
          "case is only 4 cycles/burst)")


if __name__ == "__main__":
    main()
