#!/usr/bin/env python3
"""Drop-in integration demo: the full NVDLA convolution pipeline
(CBUF -> CSC -> MAC array -> CACC), cycle-accurate, with Tempus Core's PCU
swapped in for the CMAC — and nothing else changed.

Uses the vectorized burst-level engine (mode="burst"), which is
bit-identical to the tick-level mode="cycle" simulation but runs at NumPy
speed; swap the mode below to watch the tick engine reproduce the same
numbers edge by edge.

Run:  python examples/nvdla_integration.py
"""

import numpy as np

from repro import ConvolutionCore, TempusCore, golden_conv2d
from repro.nvdla.cbuf import ConvBuffer
from repro.nvdla.config import NV_SMALL


def main() -> None:
    config = NV_SMALL  # the embedded 8x8 INT8 configuration
    rng = np.random.default_rng(7)
    activations = rng.integers(-128, 128, size=(8, 10, 10))
    weights = rng.integers(-64, 65, size=(8, 8, 3, 3))

    print(f"configuration: nv_small ({config.describe()} array)")
    print()

    results = {}
    for label, engine_cls in (
        ("NVDLA CC (binary CMAC)", ConvolutionCore),
        ("Tempus Core (tub PCU)", TempusCore),
    ):
        cbuf = ConvBuffer(capacity_kib=128, banks=16)
        engine = engine_cls(config, mode="burst", cbuf=cbuf)
        result = engine.run_layer(activations, weights, padding=1)
        results[label] = result
        print(f"{label}")
        print(f"  cycles            : {result.cycles}")
        print(f"  atoms issued      : {result.atoms}")
        print(f"  CBUF feature reads: {cbuf.feature_reads}")
        print(f"  CBUF weight reads : {cbuf.weight_reads}")
        if result.gated_cell_cycles:
            print(f"  idle lane-cycles  : {result.gated_cell_cycles}")
        print()

    golden = golden_conv2d(activations, weights, padding=1)
    binary = results["NVDLA CC (binary CMAC)"]
    tempus = results["Tempus Core (tub PCU)"]
    print("integrity checks")
    print(f"  binary == golden : {np.array_equal(binary.output, golden)}")
    print(f"  tempus == golden : {np.array_equal(tempus.output, golden)}")
    print(f"  identical atom schedules: {binary.atoms == tempus.atoms}")
    print()
    print("The CSC schedule, CBUF accesses and CACC accumulation are "
          "identical —")
    print("only the MAC array changed, stalling the sequencer through the")
    print("standard valid/ready handshake during multi-cycle tub bursts.")


if __name__ == "__main__":
    main()
