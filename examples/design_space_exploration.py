#!/usr/bin/env python3
"""Design-space exploration: sweep array geometry and precision, compare
CMAC vs PCU on area / power / iso-area throughput, and pick configurations
under an area budget.

Run:  python examples/design_space_exploration.py
"""

from repro.core.hwmodel import pcu_unit_netlist
from repro.eval.throughput import iso_area_improvement
from repro.hw.synthesis import synthesize
from repro.nvdla.hwmodel import cmac_unit_netlist
from repro.utils.intrange import int_spec
from repro.utils.tables import format_table

AREA_BUDGET_MM2 = 0.05


def main() -> None:
    rows = []
    pareto_candidates = []
    for width in (2, 4, 8):
        precision = int_spec(width)
        for k, n in ((8, 8), (16, 4), (16, 16), (32, 16)):
            cmac = synthesize(cmac_unit_netlist(k, n, precision))
            pcu = synthesize(pcu_unit_netlist(k, n, precision))
            improvement = iso_area_improvement(
                cmac.area_um2, pcu.area_um2
            )
            worst_burst = precision.worst_case_tub_cycles
            # sustained psums/cycle at the workload-independent worst case
            tub_throughput = k / worst_burst
            rows.append(
                (
                    precision.name,
                    f"{k}x{n}",
                    round(cmac.area_mm2, 4),
                    round(pcu.area_mm2, 4),
                    round(pcu.total_power_mw, 2),
                    round(improvement, 2),
                    round(tub_throughput, 2),
                )
            )
            if pcu.area_mm2 <= AREA_BUDGET_MM2:
                pareto_candidates.append(
                    (precision.name, k, n, pcu.area_mm2, tub_throughput)
                )

    print(
        format_table(
            [
                "precision",
                "array",
                "cmac mm2",
                "pcu mm2",
                "pcu mW",
                "iso-area gain",
                "worst psums/cyc",
            ],
            rows,
            title="design space: CMAC vs PCU across geometry and precision",
        )
    )
    print()

    best = max(pareto_candidates, key=lambda c: c[4])
    print(f"under a {AREA_BUDGET_MM2} mm2 budget, the highest worst-case "
          "throughput PCU is:")
    print(f"  {best[0]} {best[1]}x{best[2]} "
          f"({best[3]:.4f} mm2, {best[4]:.2f} psums/cycle worst-case)")
    print()
    print("note how lower precision collapses the tub latency penalty "
          "(worst burst: INT8=64, INT4=4, INT2=1 cycle) — the paper's "
          "motivation for targeting low-precision edge DLAs.")


if __name__ == "__main__":
    main()
