#!/usr/bin/env python3
"""End-to-end integer CNN inference through the full NVDLA-style pipeline
(conv core -> SDP requant/activation -> PDP pooling), on both engines.

This is the complete Fig. 3 picture: a three-stage network runs
bit-identically on the binary CMAC and on Tempus Core; only the cycle
counts differ.

Run:  python examples/full_network_inference.py
"""

import numpy as np

from repro.nvdla.config import CoreConfig
from repro.nvdla.pdp import PdpConfig
from repro.nvdla.pipeline import ConvStage, PoolStage, compare_engines
from repro.nvdla.sdp import SdpConfig, requant_params_from_scale
from repro.utils.intrange import INT8
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def main() -> None:
    rng = make_rng("full-network")
    config = CoreConfig(k=8, n=8, precision=INT8)

    # A small VGG-flavoured stack; requant scales picked so activations
    # use the full INT8 range (as a calibrated deployment would).
    mult1, shift1 = requant_params_from_scale(1 / 900.0)
    mult2, shift2 = requant_params_from_scale(1 / 1400.0)
    mult3, shift3 = requant_params_from_scale(1 / 1100.0)
    stages = [
        ConvStage(
            "conv1",
            INT8.random_array(rng, (16, 3, 3, 3)),
            SdpConfig(
                out_precision=INT8,
                bias=rng.integers(-500, 500, 16),
                multiplier=mult1,
                shift=shift1,
                activation="relu",
            ),
            padding=1,
        ),
        PoolStage("pool1", PdpConfig("max", kernel=2)),
        ConvStage(
            "conv2",
            INT8.random_array(rng, (32, 16, 3, 3)),
            SdpConfig(
                out_precision=INT8,
                multiplier=mult2,
                shift=shift2,
                activation="relu",
            ),
            padding=1,
        ),
        PoolStage("pool2", PdpConfig("average", kernel=2)),
        ConvStage(
            "conv3",
            INT8.random_array(rng, (10, 32, 1, 1)),
            SdpConfig(
                out_precision=INT8,
                multiplier=mult3,
                shift=shift3,
            ),
        ),
    ]

    image = INT8.random_array(rng, (3, 16, 16))
    binary, tempus = compare_engines(config, stages, image)

    rows = []
    for stage_b, stage_t in zip(binary.stages, tempus.stages):
        rows.append(
            (
                stage_b.name,
                stage_b.kind,
                "x".join(str(d) for d in stage_b.output_shape),
                stage_b.conv_cycles or "-",
                stage_t.conv_cycles or "-",
            )
        )
    print(
        format_table(
            ["stage", "kind", "output", "binary cycles", "tempus cycles"],
            rows,
            title=f"3-conv network on {config.describe()} pipeline",
        )
    )
    print()
    print(f"outputs bit-exact on both engines: "
          f"{np.array_equal(binary.output, tempus.output)}")
    print(f"total conv cycles: binary {binary.conv_cycles:,}, "
          f"tempus {tempus.conv_cycles:,} "
          f"({tempus.conv_cycles / binary.conv_cycles:.1f}x)")
    print()
    print("class scores (kernel 0..9 of conv3, global max):")
    scores = tempus.output.reshape(10, -1).max(axis=1)
    print("  " + " ".join(f"{s:4d}" for s in scores))


if __name__ == "__main__":
    main()
