#!/usr/bin/env python3
"""Future-work demo: ultra-low-precision LLM inference on tub hardware.

The paper's conclusion points at "unary-based compute architectures
targeted towards ultra-low precision quantized LLMs".  This example runs
one decoder layer's worth of token-step projections (q/k/v/o + MLP) on a
16x16 tub array at INT8/INT4/INT2 weight-only quantization and shows the
latency gap to a binary array collapsing to parity at INT2.

Run:  python examples/llm_projection.py
"""

from repro.gemm.llm import TINY_LLM, TubMatVec, token_step_latency
from repro.nvdla.config import CoreConfig
from repro.utils.intrange import int_spec
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def main() -> None:
    config = CoreConfig(k=16, n=16, precision=8)
    print(f"decoder layer: d_model={TINY_LLM.d_model}, "
          f"d_ff={TINY_LLM.d_ff}; array {config.describe()}")
    print()

    rows = []
    for width in (8, 4, 2):
        results = token_step_latency(TINY_LLM, width, config)
        tempus = sum(r.tempus_cycles for r in results.values())
        binary = sum(r.binary_cycles for r in results.values())
        rows.append(
            (
                f"INT{width}",
                int_spec(width).worst_case_tub_cycles,
                f"{binary:,}",
                f"{tempus:,}",
                f"{tempus / binary:.2f}x",
            )
        )
    print(
        format_table(
            ["weights", "worst burst", "binary cycles", "tub cycles",
             "slowdown"],
            rows,
            title="one token step, all 7 projections",
        )
    )
    print()

    # exactness spot check on the biggest projection
    engine = TubMatVec(config, weight_precision=2)
    rng = make_rng("llm-example")
    weights = engine.weight_spec.random_array(
        rng, (TINY_LLM.d_ff, TINY_LLM.d_model)
    )
    activations = engine.activation_spec.random_array(
        rng, TINY_LLM.d_model
    )
    result = engine.project(weights, activations)
    assert (result.output == weights @ activations).all()
    print("INT2 mlp.up projection: exact result, "
          f"{result.tiles:,} tiles, slowdown {result.slowdown:.2f}x — "
          "latency parity with the binary array at a fraction of its "
          "area.")


if __name__ == "__main__":
    main()
