#!/usr/bin/env python3
"""Sharded multi-worker serving: compile once, serve everywhere.

Compiles MobileNetV2 once in the parent process, forks a pool of shard
workers each holding the lowered program, and serves a stream of
single-image requests through the dynamic-batching front-end.  The
result is verified bit-identical — outputs AND cycle counts — to the
single-process batched runner, and the per-shard cycle totals show the
simulated makespan shrinking as the pool grows.

Run::

    PYTHONPATH=src python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.runtime import NetworkRunner
from repro.serve import ShardedRunner

MODEL = "mobilenet_v2"
REQUESTS = 16


def main() -> None:
    # Small preset so the example runs in seconds.
    preset = dict(scale=0.125, input_size=32)
    reference = NetworkRunner(engine="tempus", **preset)
    expected = reference.run(MODEL, REQUESTS)
    print(
        f"single process : {expected.conv_cycles:,} cycles for "
        f"{REQUESTS} requests"
    )

    for workers in (1, 2, 4):
        with ShardedRunner(
            workers=workers, engine="tempus", max_batch=4, **preset
        ) as server:
            result = server.run(MODEL, REQUESTS)
        identical = np.array_equal(result.output, expected.output)
        assert identical and result.conv_cycles == expected.conv_cycles
        print(
            f"{workers} worker(s)    : bit-identical={identical}, "
            f"jobs={result.jobs}, "
            f"makespan={result.makespan_cycles:,} cycles "
            f"(shards: {[f'{c:,}' for c in result.shard_cycles]})"
        )


if __name__ == "__main__":
    main()
